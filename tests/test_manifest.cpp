// Manifest format tests: round-trip fidelity, crash-atomic commit
// mechanics (tmp file + rename), and rejection of every corruption mode —
// a manifest that doesn't validate byte-for-byte must never load.
#include "core/manifest.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace bandana {
namespace {

std::string tmp_path(const std::string& name) {
  return "/tmp/bandana_manifest_test_" + std::to_string(::getpid()) + "_" +
         name;
}

Manifest sample_manifest() {
  Manifest m;
  m.commit_seq = 7;
  m.trickle_epoch = 3;
  m.block_bytes = 4096;
  m.vector_bytes = 128;
  m.vectors_per_block = 32;
  m.storage_blocks = 300;
  m.next_block = 260;
  m.block_file = "/tmp/blocks.bin";

  ManifestTable t0;
  t0.first_block = 0;
  t0.order = {3, 1, 0, 2, 4, 5};
  t0.block_map = {17, 4};
  t0.access_counts = {9, 0, 4, 2, 2, 1};
  t0.policy.cache_vectors = 2;
  t0.policy.policy = PrefetchPolicy::kShadowPosition;
  t0.policy.access_threshold = 5;
  t0.policy.insertion_position = 0.25;
  t0.policy.shadow_multiplier = 2.0;
  t0.free_blocks = {128, 131};
  m.tables.push_back(t0);

  ManifestTable t1;
  t1.first_block = 2;
  t1.order = {0, 1, 2, 3};
  t1.block_map = {2, 3};
  t1.policy.cache_vectors = 1;
  t1.policy.policy = PrefetchPolicy::kNone;
  m.tables.push_back(t1);
  return m;
}

void expect_equal(const Manifest& a, const Manifest& b) {
  EXPECT_EQ(a.commit_seq, b.commit_seq);
  EXPECT_EQ(a.trickle_epoch, b.trickle_epoch);
  EXPECT_EQ(a.block_bytes, b.block_bytes);
  EXPECT_EQ(a.vector_bytes, b.vector_bytes);
  EXPECT_EQ(a.vectors_per_block, b.vectors_per_block);
  EXPECT_EQ(a.storage_blocks, b.storage_blocks);
  EXPECT_EQ(a.next_block, b.next_block);
  EXPECT_EQ(a.block_file, b.block_file);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (std::size_t i = 0; i < a.tables.size(); ++i) {
    const ManifestTable& x = a.tables[i];
    const ManifestTable& y = b.tables[i];
    EXPECT_EQ(x.first_block, y.first_block);
    EXPECT_EQ(x.order, y.order);
    EXPECT_EQ(x.block_map, y.block_map);
    EXPECT_EQ(x.access_counts, y.access_counts);
    EXPECT_EQ(x.free_blocks, y.free_blocks);
    EXPECT_EQ(x.policy.cache_vectors, y.policy.cache_vectors);
    EXPECT_EQ(x.policy.policy, y.policy.policy);
    EXPECT_EQ(x.policy.access_threshold, y.policy.access_threshold);
    EXPECT_DOUBLE_EQ(x.policy.insertion_position, y.policy.insertion_position);
    EXPECT_DOUBLE_EQ(x.policy.shadow_multiplier, y.policy.shadow_multiplier);
  }
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ManifestTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_ = tmp_path("m.manifest");
};

TEST_F(ManifestTest, RoundTripsEveryField) {
  const Manifest m = sample_manifest();
  write_manifest(path_, m);
  std::string err;
  auto loaded = load_manifest(path_, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  expect_equal(m, *loaded);
  EXPECT_TRUE(manifest_valid(path_));
}

TEST_F(ManifestTest, EmptyManifestRoundTrips) {
  Manifest m;
  m.block_bytes = 4096;
  m.vector_bytes = 128;
  write_manifest(path_, m);
  auto loaded = load_manifest(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->tables.empty());
  EXPECT_TRUE(loaded->block_file.empty());
}

TEST_F(ManifestTest, CommitOverwritesAtomicallyAndCleansTmp) {
  Manifest m = sample_manifest();
  write_manifest(path_, m);
  m.commit_seq = 8;
  m.tables.pop_back();
  write_manifest(path_, m);
  auto loaded = load_manifest(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->commit_seq, 8u);
  EXPECT_EQ(loaded->tables.size(), 1u);
  // The tmp file was renamed over the target, not left behind.
  EXPECT_NE(::access((path_ + ".tmp").c_str(), F_OK), 0);
}

TEST_F(ManifestTest, MissingFileIsInvalid) {
  std::string err;
  EXPECT_FALSE(load_manifest(path_, &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(manifest_valid(path_));
}

TEST_F(ManifestTest, EveryTruncationPointIsInvalid) {
  write_manifest(path_, sample_manifest());
  const std::vector<char> blob = read_file(path_);
  ASSERT_GT(blob.size(), 28u);
  // A torn write can stop at any byte; each prefix must be rejected (step
  // a few bytes to keep the sweep fast).
  for (std::size_t n = 0; n < blob.size(); n += 7) {
    write_file(path_, {blob.begin(), blob.begin() + n});
    EXPECT_FALSE(manifest_valid(path_)) << "prefix " << n << " accepted";
  }
}

TEST_F(ManifestTest, EveryFlippedByteIsInvalid) {
  write_manifest(path_, sample_manifest());
  std::vector<char> blob = read_file(path_);
  for (std::size_t i = 0; i < blob.size(); i += 11) {
    std::vector<char> bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    write_file(path_, bad);
    EXPECT_FALSE(manifest_valid(path_)) << "flip at " << i << " accepted";
  }
  // The pristine blob still loads (the corruption sweep is the thing that
  // invalidates, not the rewrite plumbing).
  write_file(path_, blob);
  EXPECT_TRUE(manifest_valid(path_));
}

TEST_F(ManifestTest, TrailingGarbageIsInvalid) {
  write_manifest(path_, sample_manifest());
  std::vector<char> blob = read_file(path_);
  blob.push_back('x');
  write_file(path_, blob);
  EXPECT_FALSE(manifest_valid(path_));
}

TEST_F(ManifestTest, UnknownVersionIsInvalid) {
  write_manifest(path_, sample_manifest());
  std::vector<char> blob = read_file(path_);
  blob[8] = static_cast<char>(kManifestVersion + 1);  // version field
  write_file(path_, blob);
  std::string err;
  EXPECT_FALSE(load_manifest(path_, &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos);
}

TEST_F(ManifestTest, HooksFireAroundTheFlip) {
  // before_flip: tmp exists, target does not yet. after_flip: target
  // exists. This is the boundary pair the crash-injection suite kills at.
  int order = 0;
  int before_at = 0;
  int after_at = 0;
  ManifestCommitHooks hooks;
  hooks.before_flip = [&] {
    before_at = ++order;
    EXPECT_EQ(::access((path_ + ".tmp").c_str(), F_OK), 0);
    EXPECT_NE(::access(path_.c_str(), F_OK), 0);
  };
  hooks.after_flip = [&] {
    after_at = ++order;
    EXPECT_EQ(::access(path_.c_str(), F_OK), 0);
  };
  write_manifest(path_, sample_manifest(), &hooks);
  EXPECT_EQ(before_at, 1);
  EXPECT_EQ(after_at, 2);
  EXPECT_TRUE(manifest_valid(path_));
}

TEST_F(ManifestTest, ThrowingBeforeFlipPreservesPreviousManifest) {
  Manifest m = sample_manifest();
  write_manifest(path_, m);
  m.commit_seq = 99;
  ManifestCommitHooks hooks;
  hooks.before_flip = [] { throw std::runtime_error("killed before flip"); };
  EXPECT_THROW(write_manifest(path_, m, &hooks), std::runtime_error);
  auto loaded = load_manifest(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->commit_seq, 7u);  // the old version survived intact
}

}  // namespace
}  // namespace bandana
