#include "common/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace bandana {
namespace {

TEST(Zipf, InRange) {
  Rng rng(1);
  for (double s : {0.0, 0.5, 1.0, 1.3}) {
    ZipfSampler z(100, s);
    for (int i = 0; i < 5000; ++i) EXPECT_LT(z(rng), 100u);
  }
}

TEST(Zipf, SingleElement) {
  Rng rng(2);
  ZipfSampler z(1, 0.9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 0u);
}

TEST(Zipf, ZeroSkewIsUniform) {
  Rng rng(3);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(4);
  ZipfSampler z(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[z(rng)];
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[99]);
  EXPECT_GT(counts[99], counts[999]);
}

TEST(Zipf, MatchesAnalyticProbabilities) {
  // P(rank r) = (r+1)^-s / H_n(s); check the head of the distribution.
  const std::uint64_t n = 50;
  const double s = 0.8;
  double hn = 0;
  for (std::uint64_t r = 1; r <= n; ++r) hn += std::pow(r, -s);
  Rng rng(5);
  ZipfSampler z(n, s);
  std::vector<double> counts(n, 0);
  const int samples = 500000;
  for (int i = 0; i < samples; ++i) counts[z(rng)] += 1.0;
  for (std::uint64_t r = 0; r < 5; ++r) {
    const double expected = std::pow(r + 1.0, -s) / hn;
    EXPECT_NEAR(counts[r] / samples, expected, expected * 0.05)
        << "rank " << r;
  }
}

TEST(Zipf, HigherSkewConcentratesMass) {
  Rng rng(6);
  ZipfSampler weak(10000, 0.5), strong(10000, 1.2);
  auto top100_mass = [&](ZipfSampler& z) {
    int top = 0;
    for (int i = 0; i < 100000; ++i) top += z(rng) < 100;
    return top;
  };
  EXPECT_LT(top100_mass(weak), top100_mass(strong));
}

}  // namespace
}  // namespace bandana
