#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace bandana {
namespace {

TEST(TablePrinter, Formatting) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::pct(0.256, 1), "25.6%");
  EXPECT_EQ(TablePrinter::pct(1.5, 0), "150%");
}

TEST(TablePrinter, PrintsAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string path = ::testing::TempDir() + "/table.txt";
  std::FILE* f = std::fopen(path.c_str(), "w+");
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::rewind(f);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  EXPECT_TRUE(std::string(buf).find("name") != std::string::npos);
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);  // separator
  EXPECT_EQ(buf[0], '-');
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bandana
