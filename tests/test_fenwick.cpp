#include "common/fenwick.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace bandana {
namespace {

TEST(Fenwick, BasicPrefixSums) {
  FenwickTree t(8);
  t.add(0, 5);
  t.add(3, 2);
  t.add(7, 1);
  EXPECT_EQ(t.prefix_sum(0), 0);
  EXPECT_EQ(t.prefix_sum(1), 5);
  EXPECT_EQ(t.prefix_sum(4), 7);
  EXPECT_EQ(t.prefix_sum(8), 8);
  EXPECT_EQ(t.range_sum(1, 4), 2);
  EXPECT_EQ(t.range_sum(3, 8), 3);
}

TEST(Fenwick, NegativeDeltas) {
  FenwickTree t(4);
  t.add(2, 3);
  t.add(2, -3);
  EXPECT_EQ(t.prefix_sum(4), 0);
}

TEST(Fenwick, MatchesNaiveUnderRandomOps) {
  const std::size_t n = 200;
  FenwickTree t(n);
  std::vector<std::int64_t> naive(n, 0);
  Rng rng(99);
  for (int op = 0; op < 5000; ++op) {
    const std::size_t i = rng.next_below(n);
    const std::int64_t delta =
        static_cast<std::int64_t>(rng.next_below(21)) - 10;
    t.add(i, delta);
    naive[i] += delta;
    const std::size_t q = rng.next_below(n + 1);
    std::int64_t expect = 0;
    for (std::size_t j = 0; j < q; ++j) expect += naive[j];
    ASSERT_EQ(t.prefix_sum(q), expect) << "op " << op;
  }
}

TEST(Fenwick, Resize) {
  FenwickTree t(4);
  t.add(1, 7);
  t.resize(16);
  EXPECT_EQ(t.prefix_sum(16), 0);  // resize clears
  t.add(15, 2);
  EXPECT_EQ(t.prefix_sum(16), 2);
}

}  // namespace
}  // namespace bandana
