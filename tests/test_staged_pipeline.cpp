// Airtight staged-read pipeline regression suite.
//
// PR 3's staged pipeline peeked caches best-effort: a block evicted
// between the stage_miss_blocks peek and the lookup silently fell back to
// an inline single-block read, defeating the admission gate the pipeline
// was built to enforce. These tests pin the fix: on a batched backend,
// EVERY miss is served from bytes fetched through BlockStorage::
// read_blocks (staging pass or retry wave) — a CountingBlockStorage shim
// asserts that zero inline read_block calls reach the backend, under a
// deterministic single-threaded eviction race, under staging-cap
// truncation, and under a concurrent eviction-churn stress load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "core/store.h"
#include "core/store_builder.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

/// Memory-backed storage that (a) advertises batched reads so the store
/// runs the staged pipeline, and (b) counts how every byte was fetched:
/// read_blocks() batches vs inline read_block() calls. The staged
/// pipeline's contract is inline_reads == 0 once serving starts.
class CountingBlockStorage final : public BlockStorage {
 public:
  struct Counters {
    std::atomic<std::uint64_t> inline_reads{0};
    std::atomic<std::uint64_t> batched_calls{0};
    std::atomic<std::uint64_t> batched_blocks{0};
  };

  CountingBlockStorage(std::uint64_t num_blocks, std::size_t block_bytes,
                       std::shared_ptr<Counters> counters)
      : inner_(num_blocks, block_bytes), counters_(std::move(counters)) {}

  std::size_t block_bytes() const override { return inner_.block_bytes(); }
  std::uint64_t num_blocks() const override { return inner_.num_blocks(); }

  void read_block(BlockId b, std::span<std::byte> out) const override {
    counters_->inline_reads.fetch_add(1, std::memory_order_relaxed);
    inner_.read_block(b, out);
  }

  void write_block(BlockId b, std::span<const std::byte> in) override {
    inner_.write_block(b, in);
  }

  void read_blocks(std::span<const BlockReadOp> ops) const override {
    counters_->batched_calls.fetch_add(1, std::memory_order_relaxed);
    counters_->batched_blocks.fetch_add(ops.size(),
                                        std::memory_order_relaxed);
    // Serve from the inner storage directly: this path must NOT funnel
    // through read_block, or the inline counter could not distinguish a
    // batched fetch from a fallback.
    for (const auto& op : ops) inner_.read_block(op.block, op.out);
  }

  bool prefers_batched_reads() const override { return true; }

 private:
  MemoryBlockStorage inner_;
  std::shared_ptr<Counters> counters_;
};

BlockStorageFactory counting_factory(
    std::shared_ptr<CountingBlockStorage::Counters> counters) {
  return [counters](std::uint64_t num_blocks, std::size_t block_bytes) {
    return std::make_unique<CountingBlockStorage>(num_blocks, block_bytes,
                                                  counters);
  };
}

EmbeddingTable patterned_table(std::uint32_t vectors, std::uint16_t dim) {
  EmbeddingTable values(vectors, dim);
  for (VectorId v = 0; v < vectors; ++v) {
    auto row = values.vector(v);
    for (std::uint16_t d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(v) + 0.25f * static_cast<float>(d);
    }
  }
  return values;
}

bool bytes_match(const EmbeddingTable& values, VectorId v,
                 std::span<const std::byte> got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got.data(), want.data(), want.size()) == 0;
}

TEST(StagedPipeline, PeekToLookupEvictionServesThroughRetryWaveNotInline) {
  // Deterministic single-threaded repro of the race: with a 1-entry cache,
  // the staging peek sees `v` cached (so its block is NOT staged), then the
  // preceding miss on `u` evicts `v` — by lookup time v's block is gone
  // from both cache and staging. The old pipeline fell back to an inline
  // read; now the lookup defers and a retry wave fetches the block through
  // read_blocks.
  auto counters = std::make_shared<CountingBlockStorage::Counters>();
  StoreConfig cfg;
  cfg.simulate_timing = false;
  cfg.cache_shards = 1;
  StoreBuilder builder(cfg);
  builder.storage(counting_factory(counters));
  const EmbeddingTable values = patterned_table(2048, 32);
  TablePolicy policy;
  policy.cache_vectors = 1;
  policy.policy = PrefetchPolicy::kNone;
  builder.add_table(values,
                    TablePlan{BlockLayout::identity(2048, 32), {}, policy, 0.0});
  Store store = builder.build();

  // Warm the cache with v = 100 (block 3).
  std::vector<std::byte> out(128);
  store.lookup(0, 100, out);

  // u = 0 (block 0) misses and evicts v; v = 100 then misses unstaged.
  MultiGetRequest req;
  req.add(0, std::vector<VectorId>{0, 100});
  const MultiGetResult res = store.multi_get(req);
  ASSERT_TRUE(bytes_match(values, 0, {res.vectors[0].data(), 128}));
  ASSERT_TRUE(bytes_match(values, 100, {res.vectors[0].data() + 128, 128}));

  const StoreMetrics m = store.store_metrics();
  EXPECT_EQ(m.deferred_lookups, 1u);
  EXPECT_EQ(m.retry_waves, 1u);
  EXPECT_EQ(m.retry_blocks, 1u);
  EXPECT_EQ(m.stage_truncated_blocks, 0u);
  EXPECT_EQ(counters->inline_reads.load(), 0u);
  EXPECT_GE(counters->batched_calls.load(), 2u);  // staging + retry
}

TEST(StagedPipeline, TruncatedStagingIsCountedAndServedByRetryWaves) {
  // A request whose distinct miss blocks exceed the staging cap (4096
  // blocks) must not silently truncate: the overflow lookups defer and are
  // served by bounded retry waves, and the truncation is visible in the
  // metrics.
  constexpr std::uint32_t kBlocks = 4200;  // > kMaxStagedBlocks = 4096
  constexpr std::uint32_t kVectors = kBlocks * 32;
  auto counters = std::make_shared<CountingBlockStorage::Counters>();
  StoreConfig cfg;
  cfg.simulate_timing = false;
  cfg.cache_shards = 1;
  StoreBuilder builder(cfg);
  builder.storage(counting_factory(counters));
  const EmbeddingTable values = patterned_table(kVectors, 32);
  TablePolicy policy;
  policy.cache_vectors = 1;
  policy.policy = PrefetchPolicy::kNone;
  builder.add_table(
      values, TablePlan{BlockLayout::identity(kVectors, 32), {}, policy, 0.0});
  Store store = builder.build();

  std::vector<VectorId> ids;
  ids.reserve(kBlocks);
  for (std::uint32_t b = 0; b < kBlocks; ++b) ids.push_back(b * 32);
  MultiGetRequest req;
  req.add(0, ids);
  const MultiGetResult res = store.multi_get(req);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(bytes_match(values, ids[i],
                            {res.vectors[0].data() + i * 128, 128}))
        << "vector " << ids[i];
  }
  EXPECT_EQ(res.block_reads, kBlocks);

  const StoreMetrics m = store.store_metrics();
  EXPECT_EQ(m.staged_blocks, 4096u);
  EXPECT_EQ(m.stage_truncated_blocks, kBlocks - 4096u);
  EXPECT_EQ(m.deferred_lookups, kBlocks - 4096u);
  EXPECT_EQ(m.retry_blocks, kBlocks - 4096u);
  EXPECT_GE(m.retry_waves, 1u);
  EXPECT_EQ(counters->inline_reads.load(), 0u);
  EXPECT_EQ(counters->batched_blocks.load(), kBlocks);
}

TEST(StagedPipeline, ConcurrentEvictionChurnNeverFallsBackToInlineReads) {
  // The acceptance-criterion stress: many async requests against a small,
  // eviction-heavy sharded cache, so blocks are constantly evicted between
  // one request's staging peek and its lookups (and between concurrent
  // requests). The counting shim must observe ZERO inline single-block
  // reads — every miss is served through a batched staging or retry fetch.
  auto counters = std::make_shared<CountingBlockStorage::Counters>();
  TableWorkloadConfig wl;
  wl.num_vectors = 8192;
  wl.dim = 32;
  wl.mean_lookups_per_query = 48;
  wl.num_profiles = 32;  // hot set >> cache: heavy churn
  TraceGenerator gen(wl, 97);
  const EmbeddingTable values = gen.make_embeddings();
  StoreConfig cfg;
  cfg.simulate_timing = false;
  cfg.cache_shards = 4;
  StoreBuilder builder(cfg);
  builder.storage(counting_factory(counters));
  TablePolicy policy;
  policy.cache_vectors = 64;  // tiny: almost every lookup misses + evicts
  policy.policy = PrefetchPolicy::kAll;
  builder.add_table(values,
                    TablePlan{BlockLayout::random(8192, 32, 17), {}, policy,
                              0.0});
  Store store = builder.build();

  ThreadPool pool(8);
  const Trace trace = gen.generate(600);
  std::vector<std::future<MultiGetResult>> futures;
  futures.reserve(trace.num_queries());
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q));
    futures.push_back(store.multi_get_async(std::move(req), pool));
  }
  std::uint64_t served = 0;
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const MultiGetResult res = futures[q].get();
    const auto ids = trace.query(q);
    ASSERT_EQ(res.vectors[0].size(), ids.size() * 128);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(bytes_match(values, ids[i],
                              {res.vectors[0].data() + i * 128, 128}))
          << "request " << q << " vector " << ids[i];
    }
    served += res.lookups();
  }
  EXPECT_EQ(served, store.total_metrics().lookups);

  // The airtight-pipeline acceptance criterion.
  EXPECT_EQ(counters->inline_reads.load(), 0u);
  EXPECT_GT(counters->batched_blocks.load(), 0u);
  // Retry bookkeeping is internally consistent whether or not this run's
  // interleaving produced deferrals.
  const StoreMetrics m = store.store_metrics();
  EXPECT_LE(m.retry_blocks, m.deferred_lookups);
  EXPECT_LE(m.retry_waves, m.retry_blocks + 1);
}

}  // namespace
}  // namespace bandana
