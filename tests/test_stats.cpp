#include "common/stats.h"

#include <gtest/gtest.h>

namespace bandana {
namespace {

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(LatencyRecorder, Percentiles) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.add(i);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 100.0);
  EXPECT_NEAR(r.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(r.percentile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(r.mean(), 50.5);
}

TEST(LatencyRecorder, PercentileAfterMoreAdds) {
  LatencyRecorder r;
  r.add(10.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 10.0);
  r.add(20.0);
  r.add(30.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 30.0);  // cache must refresh
}

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder r;
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 0.0);
  EXPECT_EQ(r.count(), 0u);
}

TEST(LatencyRecorder, Clear) {
  LatencyRecorder r;
  r.add(5.0);
  r.clear();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.percentile(0.9), 0.0);
}

}  // namespace
}  // namespace bandana
