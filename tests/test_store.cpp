#include "core/store.h"

#include <gtest/gtest.h>

#include <cstring>

#include "trace/trace_generator.h"

namespace bandana {
namespace {

TableWorkloadConfig table_config() {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 4096;
  cfg.dim = 32;  // 128 B vectors
  cfg.mean_lookups_per_query = 10;
  cfg.num_profiles = 100;
  return cfg;
}

StoreConfig store_config(bool timing = false) {
  StoreConfig cfg;
  cfg.simulate_timing = timing;
  return cfg;
}

/// Returns true if the served bytes equal the embedding values for `v`.
bool bytes_match(const EmbeddingTable& values, VectorId v,
                 std::span<const std::byte> got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got.data(), want.data(), want.size()) == 0;
}

class StoreTest : public ::testing::TestWithParam<PrefetchPolicy> {};

TEST_P(StoreTest, ServesCorrectBytesUnderAnyPolicy) {
  TraceGenerator gen(table_config(), 1);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(store_config());
  TablePolicy policy;
  policy.cache_vectors = 256;
  policy.policy = GetParam();
  std::vector<std::uint32_t> counts(4096);
  for (VectorId v = 0; v < 4096; ++v) counts[v] = v % 40;  // synthetic stats
  const TableId t = store.add_table(
      values, BlockLayout::random(4096, 32, 9), policy, counts);

  const Trace trace = gen.generate(500);
  std::vector<std::byte> out(128 * 256);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    const auto ids = trace.query(q);
    ASSERT_LE(ids.size() * 128, out.size());
    store.lookup_batch(t, ids, out);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(bytes_match(values, ids[i],
                              {out.data() + i * 128, 128}))
          << "policy " << to_string(GetParam()) << " vector " << ids[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, StoreTest,
    ::testing::Values(PrefetchPolicy::kNone, PrefetchPolicy::kAll,
                      PrefetchPolicy::kPosition, PrefetchPolicy::kShadow,
                      PrefetchPolicy::kShadowPosition,
                      PrefetchPolicy::kThreshold),
    [](const auto& info) {
      std::string s = to_string(info.param);
      for (char& c : s) {
        if (c == '+') c = '_';
      }
      return s;
    });

TEST(Store, MetricsAreConsistent) {
  TraceGenerator gen(table_config(), 2);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(store_config());
  TablePolicy policy;
  policy.cache_vectors = 512;
  policy.policy = PrefetchPolicy::kNone;
  const TableId t =
      store.add_table(values, BlockLayout::identity(4096, 32), policy);
  const Trace trace = gen.generate(300);
  std::vector<std::byte> out(128 * 256);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    store.lookup_batch(t, trace.query(q), out);
  }
  const auto& m = store.table_metrics(t);
  EXPECT_EQ(m.lookups, trace.total_lookups());
  EXPECT_LE(m.hits, m.lookups);
  EXPECT_EQ(m.app_bytes_served, m.lookups * 128);
  EXPECT_EQ(m.nvm_bytes_read, m.nvm_block_reads * 4096);
  EXPECT_GT(m.nvm_block_reads, 0u);
  // Batching lets same-query misses share a block read, so the fraction can
  // exceed the naive 128/4096 but never 1.
  EXPECT_GE(m.effective_bandwidth_fraction(), 128.0 / 4096.0 - 1e-9);
  EXPECT_LE(m.effective_bandwidth_fraction(), 1.0);
}

TEST(Store, RepeatLookupHitsCache) {
  TraceGenerator gen(table_config(), 3);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(store_config());
  TablePolicy policy;
  policy.cache_vectors = 64;
  const TableId t = store.add_table(values, BlockLayout::identity(4096, 32),
                                    policy, std::vector<std::uint32_t>(4096, 0));
  std::vector<std::byte> out(128);
  store.lookup(t, 7, out);
  const auto before = store.table_metrics(t).nvm_block_reads;
  store.lookup(t, 7, out);
  EXPECT_EQ(store.table_metrics(t).nvm_block_reads, before);
  EXPECT_EQ(store.table_metrics(t).hits, 1u);
}

TEST(Store, MultipleTablesIsolated) {
  TraceGenerator gen(table_config(), 4);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(store_config());
  TablePolicy policy;
  policy.cache_vectors = 64;
  policy.policy = PrefetchPolicy::kNone;
  const TableId a = store.add_table(values, BlockLayout::identity(4096, 32), policy);
  const TableId b = store.add_table(values, BlockLayout::random(4096, 32, 5), policy);
  std::vector<std::byte> oa(128), ob(128);
  store.lookup(a, 100, oa);
  store.lookup(b, 100, ob);
  EXPECT_TRUE(bytes_match(values, 100, oa));
  EXPECT_TRUE(bytes_match(values, 100, ob));
  EXPECT_EQ(store.table_metrics(a).lookups, 1u);
  EXPECT_EQ(store.table_metrics(b).lookups, 1u);
  EXPECT_EQ(store.total_metrics().lookups, 2u);
}

TEST(Store, TimingRecordsQueryLatency) {
  TraceGenerator gen(table_config(), 5);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(store_config(/*timing=*/true));
  TablePolicy policy;
  policy.cache_vectors = 64;
  policy.policy = PrefetchPolicy::kNone;
  const TableId t = store.add_table(values, BlockLayout::identity(4096, 32), policy);
  std::vector<std::byte> out(128 * 8);
  const VectorId miss_ids[] = {0, 500, 1000, 1500};
  const double lat = store.lookup_batch(t, miss_ids, out);
  EXPECT_GT(lat, 0.0);  // misses hit NVM
  const double before = store.now_us();
  const VectorId hit_ids[] = {0};
  const double hit_lat = store.lookup_batch(t, hit_ids, out);
  EXPECT_EQ(hit_lat, 0.0);  // pure DRAM hit
  EXPECT_EQ(store.now_us(), before);
  EXPECT_EQ(store.query_latency_us().count(), 2u);
}

TEST(Store, RepublishRefreshesValuesAndCountsEndurance) {
  TraceGenerator gen(table_config(), 6);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(store_config());
  TablePolicy policy;
  policy.cache_vectors = 64;
  const TableId t = store.add_table(values, BlockLayout::identity(4096, 32),
                                    policy, std::vector<std::uint32_t>(4096, 0));
  std::vector<std::byte> out(128);
  store.lookup(t, 42, out);  // warm the cache with the old value

  EmbeddingTable updated(4096, 32);
  for (VectorId v = 0; v < 4096; ++v) {
    for (int d = 0; d < 32; ++d) updated.vector(v)[d] = static_cast<float>(v + d);
  }
  const auto writes_before = store.endurance().total_bytes_written();
  store.republish(t, updated, 0.5);
  EXPECT_GT(store.endurance().total_bytes_written(), writes_before);

  store.lookup(t, 42, out);
  EXPECT_TRUE(bytes_match(updated, 42, out));  // stale cache was dropped
}

TEST(Store, RejectsBadGeometry) {
  StoreConfig cfg;
  cfg.vector_bytes = 100;  // does not divide 4096
  EXPECT_THROW(Store{cfg}, std::invalid_argument);
}

TEST(Store, BoundsChecksTableAndSpanInsteadOfUB) {
  TraceGenerator gen(table_config(), 7);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(store_config());
  TablePolicy policy;
  policy.cache_vectors = 64;
  policy.policy = PrefetchPolicy::kNone;
  const TableId t =
      store.add_table(values, BlockLayout::identity(4096, 32), policy);

  std::vector<std::byte> out(128 * 2);
  const VectorId ids[2] = {1, 2};
  // Bad table handle.
  EXPECT_THROW(store.lookup_batch(static_cast<TableId>(5), ids, out),
               std::out_of_range);
  EXPECT_THROW(store.lookup(static_cast<TableId>(5), 0, out),
               std::out_of_range);
  EXPECT_THROW(store.table_metrics(static_cast<TableId>(5)),
               std::out_of_range);
  EXPECT_THROW(store.table(static_cast<TableId>(5)), std::out_of_range);
  EXPECT_THROW(store.republish(static_cast<TableId>(5), values),
               std::out_of_range);
  // Output span too small for the id list.
  std::vector<std::byte> small(128);
  EXPECT_THROW(store.lookup_batch(t, ids, small), std::invalid_argument);
  // Vector id beyond the table.
  const VectorId bad_ids[1] = {4096};
  EXPECT_THROW(store.lookup_batch(t, bad_ids, out), std::out_of_range);
  // Nothing was served by any of the rejected calls.
  EXPECT_EQ(store.table_metrics(t).lookups, 0u);
}

}  // namespace
}  // namespace bandana
