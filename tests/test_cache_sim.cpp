#include "cache/cache_sim.h"

#include <gtest/gtest.h>

#include "trace/stack_distance.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

Trace single_lookup_trace(std::span<const VectorId> seq) {
  Trace t;
  for (VectorId v : seq) {
    const VectorId q[] = {v};
    t.add_query(q);
  }
  return t;
}

TEST(CacheSim, BaselineMatchesStackDistanceHits) {
  // With one lookup per query and no prefetching, the simulator must agree
  // exactly with the Mattson stack-distance hit count.
  TableWorkloadConfig cfg;
  cfg.num_vectors = 2000;
  cfg.mean_lookups_per_query = 1.0;
  TraceGenerator g(cfg, 1);
  const Trace t = g.generate(20000);
  Trace flat = single_lookup_trace(t.all_lookups());

  const auto layout = BlockLayout::identity(cfg.num_vectors, 32);
  const HitRateCurve curve = compute_hit_rate_curve(flat, cfg.num_vectors);
  for (std::uint64_t cap : {50ULL, 200ULL, 1000ULL}) {
    CachePolicyConfig pc;
    pc.capacity_vectors = cap;
    pc.policy = PrefetchPolicy::kNone;
    const auto r = simulate_cache(flat, layout, pc);
    EXPECT_EQ(r.hits, curve.hits(cap)) << "capacity " << cap;
  }
}

TEST(CacheSim, QueryBatchingDedupsBlocks) {
  // One query touching 4 vectors of the same block costs one block read.
  const auto layout = BlockLayout::identity(64, 8);
  Trace t;
  const VectorId q[] = {0, 1, 2, 3};
  t.add_query(q);
  CachePolicyConfig pc;
  pc.capacity_vectors = 16;
  pc.policy = PrefetchPolicy::kNone;
  const auto r = simulate_cache(t, layout, pc);
  EXPECT_EQ(r.nvm_block_reads, 1u);
  EXPECT_EQ(r.unique_lookups, 4u);
  EXPECT_EQ(r.hits, 0u);
}

TEST(CacheSim, DuplicateLookupsWithinQueryCountOnce) {
  const auto layout = BlockLayout::identity(64, 8);
  Trace t;
  const VectorId q[] = {5, 5, 5};
  t.add_query(q);
  CachePolicyConfig pc;
  pc.capacity_vectors = 4;
  const auto r = simulate_cache(t, layout, pc);
  EXPECT_EQ(r.lookups, 3u);
  EXPECT_EQ(r.unique_lookups, 1u);
  EXPECT_EQ(r.nvm_block_reads, 1u);
}

TEST(CacheSim, PrefetchAllServesNeighborsFromDram) {
  // Query 1 reads vector 0 (block 0 prefetched); query 2 hits 1..7.
  const auto layout = BlockLayout::identity(64, 8);
  Trace t;
  const VectorId q0[] = {0};
  const VectorId q1[] = {1, 2, 3, 4, 5, 6, 7};
  t.add_query(q0);
  t.add_query(q1);
  CachePolicyConfig pc;
  pc.capacity_vectors = 32;
  pc.policy = PrefetchPolicy::kAll;
  const auto r = simulate_cache(t, layout, pc);
  EXPECT_EQ(r.nvm_block_reads, 1u);
  EXPECT_EQ(r.hits, 7u);
  EXPECT_EQ(r.prefetch_inserted, 7u);
  EXPECT_EQ(r.prefetch_hits, 7u);
}

TEST(CacheSim, NoPrefetchRereadsBlock) {
  const auto layout = BlockLayout::identity(64, 8);
  Trace t;
  const VectorId q0[] = {0};
  const VectorId q1[] = {1};
  t.add_query(q0);
  t.add_query(q1);
  CachePolicyConfig pc;
  pc.capacity_vectors = 32;
  pc.policy = PrefetchPolicy::kNone;
  const auto r = simulate_cache(t, layout, pc);
  EXPECT_EQ(r.nvm_block_reads, 2u);
}

TEST(CacheSim, ThresholdFiltersColdVectors) {
  const auto layout = BlockLayout::identity(64, 8);
  std::vector<std::uint32_t> counts(64, 0);
  counts[1] = 100;  // hot
  counts[2] = 1;    // cold
  Trace t;
  const VectorId q0[] = {0};
  const VectorId q1[] = {1};  // hot: should have been prefetched -> hit
  const VectorId q2[] = {2};  // cold: filtered -> miss
  t.add_query(q0);
  t.add_query(q1);
  t.add_query(q2);
  CachePolicyConfig pc;
  pc.capacity_vectors = 32;
  pc.policy = PrefetchPolicy::kThreshold;
  pc.access_threshold = 10;
  const auto r = simulate_cache(t, layout, pc, counts);
  EXPECT_EQ(r.hits, 1u);
  EXPECT_EQ(r.nvm_block_reads, 2u);
}

TEST(CacheSim, ShadowAdmitsOnlyPreviouslySeen) {
  const auto layout = BlockLayout::identity(64, 8);
  Trace t;
  // 1 is an application read (enters shadow). After eviction pressure it is
  // gone from the real cache; the next read of 0 prefetches only vectors in
  // the shadow -> 1 is admitted, 2..7 are not. The filler vectors live in
  // distinct blocks so their block reads admit nothing.
  const VectorId warm[] = {1};
  t.add_query(warm);
  for (VectorId v = 8; v < 40; v += 8) {
    const VectorId q[] = {v};
    t.add_query(q);  // push 1 out of the tiny real cache
  }
  const VectorId probe[] = {0};
  t.add_query(probe);
  const VectorId check1[] = {1};
  const VectorId check2[] = {2};
  t.add_query(check1);
  t.add_query(check2);
  CachePolicyConfig pc;
  pc.capacity_vectors = 3;
  pc.policy = PrefetchPolicy::kShadow;
  pc.shadow_multiplier = 4.0;
  const auto r = simulate_cache(t, layout, pc);
  // check1 hits (prefetched via shadow), check2 misses.
  EXPECT_EQ(r.prefetch_inserted, 1u);
  EXPECT_EQ(r.prefetch_hits, 1u);
}

TEST(CacheSim, UnlimitedCacheNeverEvicts) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 1000;
  cfg.mean_lookups_per_query = 8;
  TraceGenerator g(cfg, 2);
  const Trace t = g.generate(3000);
  const auto layout = BlockLayout::identity(cfg.num_vectors, 32);
  CachePolicyConfig pc;
  pc.unlimited = true;
  pc.policy = PrefetchPolicy::kNone;
  const auto r = simulate_cache(t, layout, pc);
  // Every unique vector misses exactly once -> reads <= unique vectors,
  // hits == unique_lookups - unique vector count.
  std::vector<bool> seen(cfg.num_vectors, false);
  std::uint64_t unique = 0;
  for (VectorId v : t.all_lookups()) {
    if (!seen[v]) {
      seen[v] = true;
      ++unique;
    }
  }
  EXPECT_EQ(r.hits, r.unique_lookups - unique);
  EXPECT_LE(r.nvm_block_reads, unique);
}

TEST(CacheSim, EffectiveBandwidthOfBaselineIsVectorOverBlock) {
  // A cold, never-reused workload: every lookup reads one block and uses
  // one vector -> effective bandwidth = 128/4096 ~ 3.1 % (paper's ~4 %).
  Trace t;
  for (VectorId v = 0; v < 512; ++v) {
    const VectorId q[] = {v};
    t.add_query(q);
  }
  const auto layout = BlockLayout::random(512, 32, 3);
  CachePolicyConfig pc;
  pc.capacity_vectors = 16;
  pc.policy = PrefetchPolicy::kNone;
  const auto r = simulate_cache(t, layout, pc);
  EXPECT_NEAR(r.effective_bandwidth(128, 4096), 128.0 / 4096.0, 1e-9);
}

TEST(EffectiveBwIncrease, Formula) {
  EXPECT_NEAR(effective_bw_increase(200, 100), 1.0, 1e-12);
  EXPECT_NEAR(effective_bw_increase(100, 100), 0.0, 1e-12);
  EXPECT_NEAR(effective_bw_increase(50, 100), -0.5, 1e-12);
}

}  // namespace
}  // namespace bandana
