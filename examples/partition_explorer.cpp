// Partition explorer: compare placement strategies for one table on a
// held-out trace — identity (original), random, K-means (semantic), and
// SHP (supervised) — reporting fanout and effective bandwidth. This is the
// paper's §4.2 exploration as a tool.
#include <cstdio>
#include <cstdlib>

#include "common/table_printer.h"
#include "core/bandana.h"

using namespace bandana;

int main(int argc, char** argv) {
  // Optional: first arg selects semantic alignment (0..1) to see K-means'
  // dependence on it (paper tables 1-2 vs 7-8).
  const double semantic = argc > 1 ? std::atof(argv[1]) : 0.6;

  TableWorkloadConfig cfg;
  cfg.num_vectors = 30'000;
  cfg.mean_lookups_per_query = 20;
  cfg.semantic_strength = semantic;
  cfg.num_profiles = 900;
  cfg.profile_frac = 0.85;
  TraceGenerator gen(cfg, 17);
  const Trace train = gen.generate(15'000);
  const Trace eval = gen.generate(5'000);
  const EmbeddingTable values = gen.make_embeddings();
  ThreadPool pool;

  std::printf("table: %u vectors, semantic alignment %.2f\n\n",
              cfg.num_vectors, semantic);

  struct Candidate {
    std::string name;
    BlockLayout layout;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"original(identity)",
                        BlockLayout::identity(cfg.num_vectors, 32)});
  candidates.push_back({"random", BlockLayout::random(cfg.num_vectors, 32, 3)});

  {
    KMeansConfig kc;
    kc.k = 1024;
    kc.max_iters = 10;
    const auto km = kmeans(values, kc, &pool);
    candidates.push_back(
        {"kmeans(k=1024)",
         BlockLayout::from_order(cluster_major_order(km.assignment, km.k), 32)});
  }
  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto shp = run_shp(train, cfg.num_vectors, sc, &pool);
  candidates.push_back({"shp", BlockLayout::from_order(shp.order, 32)});

  const auto base = simulate_cache(eval, candidates[0].layout,
                                   baseline_policy(0, /*unlimited=*/true))
                        .nvm_block_reads;
  CachePolicyConfig batched;
  batched.unlimited = true;
  batched.policy = PrefetchPolicy::kNone;

  TablePrinter t({"layout", "eval_fanout", "nvm_reads", "ebw_increase"});
  for (const auto& c : candidates) {
    const auto fanout = compute_fanout(eval, c.layout);
    const auto reads = simulate_cache(eval, c.layout, batched).nvm_block_reads;
    t.add_row({c.name, TablePrinter::fmt(fanout.avg_fanout, 2),
               std::to_string(reads),
               TablePrinter::pct(effective_bw_increase(base, reads))});
  }
  t.print();
  std::printf("\nbaseline: single-vector reads, unlimited cache "
              "(%llu block reads)\n",
              static_cast<unsigned long long>(base));
  return 0;
}
