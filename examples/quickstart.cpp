// Quickstart: train a plan for one embedding table, build a store from it
// in one shot, and serve request-level traffic.
//
//   1. Generate a synthetic table + access stream (stand-in for production).
//   2. Train: SHP layout from history + threshold tuning via mini caches.
//   3. StoreBuilder(cfg).add_plan(plan, tables).build() — no per-table
//      ceremony; swap .file_storage(path) in to run against a real file.
//   4. Serve MultiGetRequests; print hit rate, NVM reads, request latency.
#include <cstdio>
#include <vector>

#include "core/bandana.h"

using namespace bandana;

int main() {
  // 1. A 50k-vector embedding table with realistic reuse structure.
  TableWorkloadConfig workload;
  workload.num_vectors = 50'000;
  workload.dim = 32;  // 128 B vectors, 32 per 4 KB NVM block
  workload.mean_lookups_per_query = 20;
  workload.num_profiles = 1000;  // strong, learnable co-access structure
  workload.profile_frac = 0.85;
  workload.profile_skew = 0.7;
  TraceGenerator gen(workload, /*seed=*/42);
  const Trace history = gen.generate(20'000);  // what we train on
  const std::vector<EmbeddingTable> tables = {gen.make_embeddings()};

  // 2. Offline training: placement + cache policy.
  StoreConfig store_cfg;  // defaults: 4 KB blocks, 128 B vectors, timing on
  TrainerConfig trainer_cfg;
  trainer_cfg.total_cache_vectors = 5'000;  // 10% of the table in DRAM
  Trainer trainer(store_cfg, trainer_cfg);
  const std::uint32_t sizes[1] = {workload.num_vectors};
  ThreadPool pool;
  StorePlan plan = trainer.train({&history, 1}, sizes, &pool);
  std::printf("trained: SHP fanout %.2f, threshold t=%u, cache=%llu vectors\n",
              plan.tables[0].shp_train_fanout,
              plan.tables[0].policy.access_threshold,
              static_cast<unsigned long long>(
                  plan.tables[0].policy.cache_vectors));

  // 3. Boot the store in one shot from the plan.
  Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();

  // 4. Serve fresh traffic from the same stream, one request per query.
  //    multi_get timing is open-loop: advance_time_us paces the arrivals
  //    (50 us apart = 20k requests/s offered load).
  const Trace live = gen.generate(5'000);
  const TableId table = 0;
  for (std::size_t q = 0; q < live.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(table, live.query(q));
    store.advance_time_us(50.0);
    const MultiGetResult res = store.multi_get(req);
    (void)res;  // res.vectors[0] holds the embedding bytes, in id order
  }

  const TableMetrics& m = store.table_metrics(table);
  std::printf("served %llu lookups: hit rate %.1f%%, %llu NVM block reads\n",
              static_cast<unsigned long long>(m.lookups), 100 * m.hit_rate(),
              static_cast<unsigned long long>(m.nvm_block_reads));
  std::printf("effective bandwidth: %.1f%% of NVM reads were useful bytes "
              "(naive baseline: 3.1%%)\n",
              100 * m.effective_bandwidth_fraction());
  std::printf("request latency: mean %.1f us, p99 %.1f us (simulated NVM)\n",
              store.request_latency_us().mean(),
              store.request_latency_us().percentile(0.99));
  return 0;
}
