// End-to-end recommender serving: the full 8-table production-like model
// (paper Table 1) behind one Bandana store, trained offline, built in one
// shot from the plan, and serving whole DLRM requests (one MultiGetRequest
// fanning out across every table) with simulated NVM timing. A second wave
// is served asynchronously on a ThreadPool. Compares against the naive
// single-vector baseline and reports the DRAM savings story (§1).
//
// Run with a path argument to back the store with a real file instead of
// heap memory:   ./recommender_serving /tmp/bandana_blocks.bin
#include <cstdio>
#include <future>
#include <vector>

#include "common/table_printer.h"
#include "core/bandana.h"
#include "trace/paper_workload.h"

using namespace bandana;

int main(int argc, char** argv) {
  PaperWorkloadOptions opts;
  opts.scale = 0.1;  // 8 tables of 10k-20k vectors
  const auto configs = paper_tables(opts);

  std::vector<TraceGenerator> gens;
  std::vector<Trace> train;
  std::vector<std::uint32_t> sizes;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    gens.emplace_back(configs[i], 7'000 + i);
    train.push_back(gens.back().generate(15'000));
    sizes.push_back(configs[i].num_vectors);
  }

  StoreConfig store_cfg;
  TrainerConfig trainer_cfg;
  std::uint64_t total_vectors = 0;
  for (auto s : sizes) total_vectors += s;
  trainer_cfg.total_cache_vectors = total_vectors / 25;  // 4% DRAM
  ThreadPool pool;

  // One-shot boot: the builder runs the whole offline pipeline (partition +
  // hit-rate curves + threshold tuning) against its own StoreConfig and
  // queues the plan; storage is allocated at its final size, which is what
  // makes the file backend practical.
  std::vector<EmbeddingTable> tables;
  for (auto& g : gens) tables.push_back(g.make_embeddings());
  StoreBuilder builder(store_cfg);
  builder.train_and_add(trainer_cfg, train, tables, &pool);
  if (argc > 1) {
    builder.file_storage(argv[1]);
    std::printf("backing storage: file %s\n", argv[1]);
  }
  Store store = builder.build();

  std::printf("model: %llu vectors on NVM (%llu blocks), %llu cached in DRAM "
              "(%.1f%%)\n\n",
              static_cast<unsigned long long>(total_vectors),
              static_cast<unsigned long long>(store.storage().num_blocks()),
              static_cast<unsigned long long>(trainer_cfg.total_cache_vectors),
              100.0 * trainer_cfg.total_cache_vectors / total_vectors);

  // Serve 5k user requests synchronously; each request fans out across all
  // tables and its block reads are deduplicated and scheduled as one unit.
  std::vector<Trace> live;
  for (auto& g : gens) live.push_back(g.generate(5'000));
  for (std::size_t q = 0; q < 5'000; ++q) {
    MultiGetRequest req;
    for (std::size_t i = 0; i < live.size(); ++i) {
      req.add(static_cast<TableId>(i), live[i].query(q));
    }
    store.multi_get(req);
    store.advance_time_us(150.0);  // request inter-arrival
  }

  // A second wave served asynchronously: requests pipeline across tables
  // via per-table locking.
  std::vector<Trace> wave2;
  for (auto& g : gens) wave2.push_back(g.generate(1'000));
  ThreadPool serving_pool(4);
  std::vector<std::future<MultiGetResult>> inflight;
  for (std::size_t q = 0; q < 1'000; ++q) {
    MultiGetRequest req;
    for (std::size_t i = 0; i < wave2.size(); ++i) {
      req.add(static_cast<TableId>(i), wave2[i].query(q));
    }
    store.advance_time_us(150.0);
    inflight.push_back(store.multi_get_async(std::move(req), serving_pool));
  }
  for (auto& f : inflight) f.get();

  TablePrinter t({"table", "cache_vec", "t", "hit_rate", "nvm_reads",
                  "effective_bw"});
  for (std::size_t i = 0; i < store.num_tables(); ++i) {
    const auto& m = store.table_metrics(static_cast<TableId>(i));
    const TablePolicy policy =
        store.table(static_cast<TableId>(i)).policy_snapshot();
    t.add_row({configs[i].name,
               std::to_string(policy.cache_vectors),
               std::to_string(policy.access_threshold),
               TablePrinter::pct(m.hit_rate()),
               std::to_string(m.nvm_block_reads),
               TablePrinter::pct(m.effective_bandwidth_fraction())});
  }
  t.print();

  const auto total = store.total_metrics();
  std::printf("\ntotals: %llu lookups, %llu NVM reads, request latency mean "
              "%.1f us / p99 %.1f us\n",
              static_cast<unsigned long long>(total.lookups),
              static_cast<unsigned long long>(total.nvm_block_reads),
              store.request_latency_us().mean(),
              store.request_latency_us().percentile(0.99));
  std::printf("DRAM saved vs all-DRAM serving: %.1f%% (only the cache stays "
              "in DRAM)\n",
              100.0 * (1.0 - static_cast<double>(trainer_cfg.total_cache_vectors) /
                                 total_vectors));
  return 0;
}
