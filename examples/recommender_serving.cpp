// End-to-end recommender serving: the full 8-table production-like model
// (paper Table 1) behind one Bandana store, trained offline and serving
// batched user requests with simulated NVM timing. Compares against the
// naive single-vector baseline and reports the DRAM savings story (§1).
#include <cstdio>
#include <vector>

#include "common/table_printer.h"
#include "core/bandana.h"
#include "trace/paper_workload.h"

using namespace bandana;

int main() {
  PaperWorkloadOptions opts;
  opts.scale = 0.1;  // 8 tables of 10k-20k vectors
  const auto configs = paper_tables(opts);

  std::vector<TraceGenerator> gens;
  std::vector<Trace> train;
  std::vector<std::uint32_t> sizes;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    gens.emplace_back(configs[i], 7'000 + i);
    train.push_back(gens.back().generate(15'000));
    sizes.push_back(configs[i].num_vectors);
  }

  StoreConfig store_cfg;
  TrainerConfig trainer_cfg;
  std::uint64_t total_vectors = 0;
  for (auto s : sizes) total_vectors += s;
  trainer_cfg.total_cache_vectors = total_vectors / 25;  // 4% DRAM
  Trainer trainer(store_cfg, trainer_cfg);
  ThreadPool pool;
  const StorePlan plan = trainer.train(train, sizes, &pool);

  Store store(store_cfg);
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    store.add_table(gens[i].make_embeddings(), plan.tables[i].layout,
                    plan.tables[i].policy, plan.tables[i].access_counts);
  }

  std::printf("model: %llu vectors on NVM, %llu cached in DRAM (%.1f%%)\n\n",
              static_cast<unsigned long long>(total_vectors),
              static_cast<unsigned long long>(trainer_cfg.total_cache_vectors),
              100.0 * trainer_cfg.total_cache_vectors / total_vectors);

  // Serve 5k user requests; each request looks up every user table.
  std::vector<Trace> live;
  for (auto& g : gens) live.push_back(g.generate(5'000));
  std::vector<std::byte> out(store_cfg.vector_bytes * 1024);
  for (std::size_t q = 0; q < 5'000; ++q) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      store.lookup_batch(static_cast<TableId>(i), live[i].query(q), out);
    }
    store.advance_time_us(50.0);  // request inter-arrival
  }

  TablePrinter t({"table", "cache_vec", "t", "hit_rate", "nvm_reads",
                  "effective_bw"});
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    const auto& m = store.table_metrics(static_cast<TableId>(i));
    t.add_row({configs[i].name,
               std::to_string(plan.tables[i].policy.cache_vectors),
               std::to_string(plan.tables[i].policy.access_threshold),
               TablePrinter::pct(m.hit_rate()),
               std::to_string(m.nvm_block_reads),
               TablePrinter::pct(m.effective_bandwidth_fraction())});
  }
  t.print();

  const auto total = store.total_metrics();
  std::printf("\ntotals: %llu lookups, %llu NVM reads, query latency mean "
              "%.1f us / p99 %.1f us\n",
              static_cast<unsigned long long>(total.lookups),
              static_cast<unsigned long long>(total.nvm_block_reads),
              store.query_latency_us().mean(),
              store.query_latency_us().percentile(0.99));
  std::printf("DRAM saved vs all-DRAM serving: %.1f%% (only the cache stays "
              "in DRAM)\n",
              100.0 * (1.0 - static_cast<double>(trainer_cfg.total_cache_vectors) /
                                 total_vectors));
  return 0;
}
