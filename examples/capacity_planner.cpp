// Capacity planning: how much DRAM does each table deserve?
//
// Uses mini-cache (sampled) hit-rate curves to (a) split a DRAM budget
// across tables by marginal utility and (b) show the hit rate each table
// achieves — the §4.3.3 workflow a datacenter operator runs before
// deploying Bandana. Also checks the NVM endurance budget for the planned
// republish cadence (§2.2).
#include <algorithm>
#include <cstdio>

#include "common/table_printer.h"
#include "core/bandana.h"
#include "trace/paper_workload.h"

using namespace bandana;

int main() {
  PaperWorkloadOptions opts;
  opts.scale = 0.1;
  const auto configs = paper_tables(opts);

  std::vector<HitRateCurve> curves;
  std::uint64_t total_vectors = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    TraceGenerator gen(configs[i], 9'000 + i);
    const Trace history = gen.generate(15'000);
    // 1% spatial sample: ~100x cheaper than exact stack distances.
    curves.push_back(
        approximate_hit_rate_curve(history, configs[i].num_vectors, 0.01));
    total_vectors += configs[i].num_vectors;
  }

  std::printf("DRAM split by greedy marginal utility vs uniform:\n\n");
  TablePrinter t({"budget", "policy", "t1", "t2", "t3", "t4", "t5", "t6",
                  "t7", "t8", "total_hits"});
  for (double frac : {0.02, 0.05, 0.10}) {
    const auto budget = static_cast<std::uint64_t>(frac * total_vectors);
    const auto greedy = allocate_dram(curves, budget, 256);
    const auto uniform = allocate_uniform(curves, budget);
    for (const auto* a : {&greedy, &uniform}) {
      std::vector<std::string> row{
          std::to_string(budget), a == &greedy ? "greedy" : "uniform"};
      for (auto v : a->per_table) row.push_back(std::to_string(v));
      row.push_back(std::to_string(a->expected_hits));
      t.add_row(std::move(row));
    }
  }
  t.print();

  // Endurance check: is republishing every table 12x/day sustainable?
  const NvmDeviceConfig device;
  EnduranceTracker endurance(device.capacity_blocks * device.block_bytes,
                             device.endurance_dwpd);
  const std::uint64_t model_bytes = total_vectors * 128;
  for (int day = 0; day < 30; ++day) {
    for (int pub = 0; pub < 12; ++pub) {
      endurance.record_write(model_bytes, day + pub / 12.0);
    }
  }
  std::printf("\nendurance: republishing the full model 12x/day writes "
              "%.2f DWPD (budget %.0f) -> %s; projected device lifetime "
              "%.0f+ years\n",
              endurance.observed_dwpd(), device.endurance_dwpd,
              endurance.within_budget() ? "OK" : "OVER BUDGET",
              std::min(endurance.projected_lifetime_years(), 1e4));
  return 0;
}
