// Fig. 8: effective bandwidth increase for two-stage (recursive) K-means as
// a function of the total number of sub-clusters (unlimited cache).
// Matches flat K-means' quality at a fraction of the cost; no benefit past
// a moderate leaf count.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.1;
  const auto runs = make_runs(kScale, 0, scaled(15'000));
  const int tables[4] = {0, 1, 5, 7};
  ThreadPool pool;

  print_header("Figure 8: EBW increase vs recursive K-means sub-clusters",
               "paper Fig. 8 (flat beyond ~8192 sub-clusters at full scale)",
               "1:200 tables, 64 top clusters, unlimited cache");

  CachePolicyConfig batched;
  batched.unlimited = true;
  batched.policy = PrefetchPolicy::kNone;

  TablePrinter t({"sub_clusters", "table1", "table2", "table6", "table8"});
  std::vector<std::uint64_t> base(4);
  std::vector<EmbeddingTable> values;
  for (int j = 0; j < 4; ++j) {
    const auto& r = runs[tables[j]];
    base[j] = baseline_reads(r.eval, r.cfg.num_vectors, 0, true);
    values.push_back(r.gen->make_embeddings());
  }
  for (std::uint32_t full_leaves : {64u, 256u, 1024u, 4096u}) {
    const std::uint32_t leaves = scaled32(full_leaves, 8);
    std::vector<std::string> row{std::to_string(leaves)};
    for (int j = 0; j < 4; ++j) {
      const auto& r = runs[tables[j]];
      RecursiveKMeansConfig rc;
      rc.top_clusters = scaled32(64, 4);
      rc.total_leaves = leaves;
      rc.max_iters = 8;
      const auto rk = recursive_kmeans(values[j], rc, &pool);
      const auto layout = BlockLayout::from_order(rk.order, 32);
      const auto reads = simulate_cache(r.eval, layout, batched).nvm_block_reads;
      row.push_back(pct(effective_bw_increase(base[j], reads)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}
