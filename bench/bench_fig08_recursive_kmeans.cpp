// Fig. 8: effective bandwidth increase for two-stage (recursive) K-means as
// a function of the total number of sub-clusters (unlimited cache).
// Matches flat K-means' quality at a fraction of the cost; no benefit past
// a moderate leaf count. Part (b) runs every Partitioner backend on the
// same tables so runtime can be traded against layout quality directly.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.1;
  const auto runs = make_runs(kScale, 0, scaled(15'000));
  const int tables[4] = {0, 1, 5, 7};
  ThreadPool pool;

  print_header("Figure 8: EBW increase vs recursive K-means sub-clusters",
               "paper Fig. 8 (flat beyond ~8192 sub-clusters at full scale)",
               "1:200 tables, 64 top clusters, unlimited cache");

  CachePolicyConfig batched;
  batched.unlimited = true;
  batched.policy = PrefetchPolicy::kNone;

  TablePrinter t({"sub_clusters", "table1", "table2", "table6", "table8"});
  std::vector<std::uint64_t> base(4);
  std::vector<EmbeddingTable> values;
  for (int j = 0; j < 4; ++j) {
    const auto& r = runs[tables[j]];
    base[j] = baseline_reads(r.eval, r.cfg.num_vectors, 0, true);
    values.push_back(r.gen->make_embeddings());
  }
  for (std::uint32_t full_leaves : {64u, 256u, 1024u, 4096u}) {
    const std::uint32_t leaves = scaled32(full_leaves, 8);
    std::vector<std::string> row{std::to_string(leaves)};
    for (int j = 0; j < 4; ++j) {
      const auto& r = runs[tables[j]];
      RecursiveKMeansConfig rc;
      rc.top_clusters = scaled32(64, 4);
      rc.total_leaves = leaves;
      rc.max_iters = 8;
      const auto rk = recursive_kmeans(values[j], rc, &pool);
      const auto layout = BlockLayout::from_order(rk.order, 32);
      const auto reads = simulate_cache(r.eval, layout, batched).nvm_block_reads;
      row.push_back(pct(effective_bw_increase(base[j], reads)));
    }
    t.add_row(std::move(row));
  }
  t.print();

  // Same tables through the Partitioner seam: each backend's layout quality
  // (EBW increase, unlimited cache) against its summed training wall time.
  print_header("\nFigure 8b: partitioner backend runtime vs quality",
               "runtime/quality trade across backends (no single paper fig)",
               "1:200 tables, 10k training queries, unlimited cache");
  {
    struct Combo {
      PartitionerBackend backend;
      unsigned threads;
    };
    constexpr Combo kCombos[] = {
        {PartitionerBackend::kShp, 1},
        {PartitionerBackend::kShp, 4},
        {PartitionerBackend::kRecursiveKMeans, 4},
        {PartitionerBackend::kHypergraph, 1},
    };
    std::vector<Trace> train;
    for (int j = 0; j < 4; ++j) {
      train.push_back(runs[tables[j]].gen->generate(scaled(10'000)));
    }
    TablePrinter tb({"backend", "threads", "table1", "table2", "table6",
                     "table8", "train_s"});
    for (const Combo& combo : kCombos) {
      PartitionerConfig pcfg;
      pcfg.backend = combo.backend;
      pcfg.kmeans.top_clusters = scaled32(64, 4);
      pcfg.kmeans.total_leaves =
          std::max(scaled32(1024, 16), pcfg.kmeans.top_clusters);
      const auto partitioner = make_partitioner(pcfg, 32);
      ThreadPool workers(combo.threads);
      double train_s = 0.0;
      std::vector<std::string> row{partitioner->name(),
                                   std::to_string(combo.threads)};
      for (int j = 0; j < 4; ++j) {
        const auto& r = runs[tables[j]];
        WallTimer w;
        const auto res = partitioner->partition(train[j], r.cfg.num_vectors,
                                                &values[j], &workers);
        train_s += w.seconds();
        const auto layout = BlockLayout::from_order(res.order, 32);
        const auto reads =
            simulate_cache(r.eval, layout, batched).nvm_block_reads;
        row.push_back(pct(effective_bw_increase(base[j], reads)));
      }
      row.push_back(TablePrinter::fmt(train_s, 2));
      tb.add_row(std::move(row));
    }
    tb.print();
  }
  return 0;
}
