// Fig. 3: LRU hit-rate curves of the four tables with the most lookups
// (tables 1, 2, 6, 7), from exact Mattson stack distances.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, 0, scaled(30'000));
  const int tables[4] = {0, 1, 5, 6};  // tables 1, 2, 6, 7

  print_header("Figure 3: hit rate curves (top-lookup tables)",
               "paper Fig. 3 (table 2 saturates fastest; curves are concave)",
               "1:100 tables, 30k queries; cache size as fraction of table");

  TablePrinter t({"cache_frac", "table1", "table2", "table6", "table7"});
  std::vector<HitRateCurve> curves;
  for (int i : tables) {
    curves.push_back(compute_hit_rate_curve(runs[i].eval, runs[i].cfg.num_vectors));
  }
  for (double frac : {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0}) {
    std::vector<std::string> row{TablePrinter::fmt(frac, 3)};
    for (std::size_t j = 0; j < curves.size(); ++j) {
      const auto cap = static_cast<std::uint64_t>(
          frac * runs[tables[j]].cfg.num_vectors);
      row.push_back(pct(curves[j].hit_rate(cap)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nMax hit rate = 1 - compulsory rate; concavity feeds the "
              "DRAM allocator (Sec 4.3.3).\n");
  return 0;
}
