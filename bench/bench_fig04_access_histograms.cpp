// Fig. 4: access histograms — how many vectors were read N times — for the
// four top-lookup tables. Heavy-tailed: some vectors in table 2 are read
// orders of magnitude more often than table 7's hottest.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, 0, scaled(30'000));
  const int tables[4] = {0, 1, 5, 6};

  print_header("Figure 4: access histograms (top-lookup tables)",
               "paper Fig. 4 (log-scale vector counts per access bucket)",
               "1:100 tables, 30k queries");

  for (int i : tables) {
    const auto counts = access_counts(runs[i].eval, runs[i].cfg.num_vectors);
    std::uint32_t max_count = 0;
    for (auto c : counts) max_count = std::max(max_count, c);
    const auto h = access_histogram(counts, max_count + 1, 12);

    std::printf("-- %s (max accesses of a single vector: %u) --\n",
                runs[i].cfg.name.c_str(), max_count);
    TablePrinter t({"accesses_range", "num_vectors"});
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      if (h.bucket_value(b) == 0) continue;
      const auto [lo, hi] = h.bucket_range(b);
      t.add_row({"[" + std::to_string(lo) + ", " + std::to_string(hi) + ")",
                 std::to_string(h.bucket_value(b))});
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
