// Table 2: miniature-cache threshold selection vs the ideal (full-size)
// choice, at sampling rates 10% / 1% / 0.1%. Even heavy down-sampling picks
// a threshold whose full-size bandwidth gain is close to the oracle's.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main() {
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, 30'000, 15'000);
  const auto& r = runs[1];  // table 2
  ThreadPool pool;

  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
  const auto layout = BlockLayout::from_order(shp.order, 32);
  const std::vector<std::uint32_t> candidates{0, 2, 5, 10, 15, 20};

  // Full-size gain of a threshold vs the no-prefetch baseline.
  auto full_gain = [&](std::uint64_t cap, std::uint32_t thr) {
    CachePolicyConfig none;
    none.capacity_vectors = cap;
    none.policy = PrefetchPolicy::kNone;
    const auto base = simulate_cache(r.eval, layout, none).nvm_block_reads;
    CachePolicyConfig pc;
    pc.capacity_vectors = cap;
    pc.policy = PrefetchPolicy::kThreshold;
    pc.access_threshold = thr;
    const auto reads =
        simulate_cache(r.eval, layout, pc, shp.access_counts).nvm_block_reads;
    return effective_bw_increase(base, reads);
  };

  print_header("Table 2: miniature-cache threshold selection (table 2)",
               "paper Table 2 (0.1% sampling ~= ideal threshold's gain; mild "
               "divergence at crossover sizes)",
               "1:100 table 2; cache sizes 1k..10k vectors");

  TablePrinter t({"cache", "ideal_thr", "ideal_gain", "10%_thr", "gain",
                  "1%_thr", "gain", "0.1%_thr", "gain"});
  // Spans the regime where the ideal threshold shifts: small caches filter
  // aggressively, large caches prefetch more (paper Table 2, Fig. 12).
  for (std::uint64_t cap : {1000ULL, 3000ULL, 6000ULL, 10000ULL}) {
    // Oracle: evaluate every candidate at full size.
    std::uint32_t ideal = 0;
    double ideal_gain = -1e9;
    for (std::uint32_t thr : candidates) {
      const double g = full_gain(cap, thr);
      if (g > ideal_gain) {
        ideal_gain = g;
        ideal = thr;
      }
    }
    std::vector<std::string> row{std::to_string(cap), std::to_string(ideal),
                                 pct(ideal_gain)};
    for (double rate : {0.1, 0.01, 0.001}) {
      MiniCacheTunerConfig mc;
      mc.sampling_rate = rate;
      mc.candidates = candidates;
      const auto choice =
          tune_threshold(r.eval, layout, shp.access_counts, cap, mc);
      row.push_back(std::to_string(choice.threshold));
      row.push_back(pct(full_gain(cap, choice.threshold)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}
