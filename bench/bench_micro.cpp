// Micro-benchmarks (google-benchmark) for Bandana's hot kernels: the
// insertion-position LRU, Zipf sampling, stack-distance updates, the NVM
// event loop, SHP end-to-end on a small table, and cache replay throughput.
#include <benchmark/benchmark.h>

#include "core/bandana.h"

namespace bandana {
namespace {

void BM_LruAccessInsert(benchmark::State& state) {
  const std::uint32_t universe = 100'000;
  InsertionLru cache(universe, static_cast<std::uint64_t>(state.range(0)));
  Rng rng(1);
  ZipfSampler zipf(universe, 0.9);
  for (auto _ : state) {
    const auto v = static_cast<VectorId>(zipf(rng));
    if (!cache.access(v)) cache.insert(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruAccessInsert)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_LruWithInsertionPoints(benchmark::State& state) {
  const std::uint32_t universe = 100'000;
  InsertionLru cache(universe, 16384, {0.0, 0.5});
  Rng rng(1);
  ZipfSampler zipf(universe, 0.9);
  for (auto _ : state) {
    const auto v = static_cast<VectorId>(zipf(rng));
    if (!cache.access(v)) cache.insert(v, rng.next_bernoulli(0.5) ? 1 : 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruWithInsertionPoints);

void BM_ShardedLruAccessInsert(benchmark::State& state) {
  // Single-threaded op overhead of the sharded cache vs the flat LRU
  // (shard routing + local-id indirection); the concurrency win itself is
  // measured end-to-end by bench_fig05's shard sweep.
  const std::uint32_t universe = 100'000;
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::uint32_t> shard_of(universe);
  for (VectorId v = 0; v < universe; ++v) shard_of[v] = (v / 32) % shards;
  ShardedInsertionLru cache(universe, 16384, {0.0, 0.5}, shard_of, shards);
  Rng rng(1);
  ZipfSampler zipf(universe, 0.9);
  for (auto _ : state) {
    const auto v = static_cast<VectorId>(zipf(rng));
    if (!cache.access(v)) cache.insert(v, rng.next_bernoulli(0.5) ? 1 : 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedLruAccessInsert)->Arg(1)->Arg(8)->Arg(64);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(2);
  ZipfSampler zipf(10'000'000, 0.99);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += zipf(rng);
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_StackDistanceAccess(benchmark::State& state) {
  const std::uint32_t n = 100'000;
  StackDistanceAnalyzer a(n);
  Rng rng(3);
  ZipfSampler zipf(n, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.access(static_cast<VectorId>(zipf(rng))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackDistanceAccess);

void BM_NvmSubmitRead(benchmark::State& state) {
  NvmDeviceConfig cfg;
  NvmLatencyModel model(cfg);
  std::vector<double> channels(cfg.channels, 0.0);
  Rng rng(4);
  double now = 0.0;
  for (auto _ : state) {
    now += 1.0;
    benchmark::DoNotOptimize(submit_read(model, now, channels, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvmSubmitRead);

Trace make_bench_trace(std::uint32_t vectors, std::size_t queries) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = vectors;
  cfg.mean_lookups_per_query = 16;
  cfg.num_profiles = vectors / 32;
  TraceGenerator gen(cfg, 99);
  return gen.generate(queries);
}

void BM_ShpPartition(benchmark::State& state) {
  const auto vectors = static_cast<std::uint32_t>(state.range(0));
  const Trace train = make_bench_trace(vectors, vectors / 4);
  ShpConfig sc;
  sc.vectors_per_block = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_shp(train, vectors, sc));
  }
  state.SetItemsProcessed(state.iterations() * vectors);
}
BENCHMARK(BM_ShpPartition)->Arg(8192)->Arg(32768)->Unit(benchmark::kMillisecond);

void BM_CacheReplay(benchmark::State& state) {
  const std::uint32_t vectors = 50'000;
  const Trace trace = make_bench_trace(vectors, 5000);
  const auto layout = BlockLayout::random(vectors, 32, 7);
  CachePolicyConfig pc;
  pc.capacity_vectors = 4000;
  pc.policy = PrefetchPolicy::kAll;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_cache(trace, layout, pc));
  }
  state.SetItemsProcessed(state.iterations() * trace.total_lookups());
  state.SetLabel("lookups/iter=" + std::to_string(trace.total_lookups()));
}
BENCHMARK(BM_CacheReplay)->Unit(benchmark::kMillisecond);

void BM_StoreLookupBatch(benchmark::State& state) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 32'768;
  cfg.mean_lookups_per_query = 16;
  TraceGenerator gen(cfg, 5);
  const EmbeddingTable values = gen.make_embeddings();
  StoreConfig store_cfg;
  store_cfg.simulate_timing = true;
  Store store(store_cfg);
  TablePolicy policy;
  policy.cache_vectors = 4096;
  policy.policy = PrefetchPolicy::kAll;
  const TableId t =
      store.add_table(values, BlockLayout::random(cfg.num_vectors, 32, 3), policy);
  const Trace trace = gen.generate(4000);
  std::vector<std::byte> out(128 * 512);
  std::size_t q = 0;
  for (auto _ : state) {
    store.lookup_batch(t, trace.query(q), out);
    q = (q + 1) % trace.num_queries();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLookupBatch);

void BM_StoreMultiGet(benchmark::State& state) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 32'768;
  cfg.mean_lookups_per_query = 16;
  TraceGenerator gen_a(cfg, 5), gen_b(cfg, 6);
  const EmbeddingTable values_a = gen_a.make_embeddings();
  const EmbeddingTable values_b = gen_b.make_embeddings();
  StoreConfig store_cfg;
  store_cfg.simulate_timing = true;
  TablePolicy policy;
  policy.cache_vectors = 4096;
  policy.policy = PrefetchPolicy::kAll;
  StoreBuilder builder(store_cfg);
  builder.add_table(values_a,
                    TablePlan{BlockLayout::random(cfg.num_vectors, 32, 3),
                              {}, policy, 0.0});
  builder.add_table(values_b,
                    TablePlan{BlockLayout::random(cfg.num_vectors, 32, 4),
                              {}, policy, 0.0});
  Store store = builder.build();
  const Trace trace_a = gen_a.generate(4000);
  const Trace trace_b = gen_b.generate(4000);
  std::size_t q = 0;
  for (auto _ : state) {
    MultiGetRequest req;
    req.add(0, trace_a.query(q)).add(1, trace_b.query(q));
    benchmark::DoNotOptimize(store.multi_get(req));
    q = (q + 1) % trace_a.num_queries();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreMultiGet);

}  // namespace
}  // namespace bandana

BENCHMARK_MAIN();
