// Distributed serving tier: StoreCluster topology sweeps.
//
// Part 1 sweeps nodes x replicas: simulated request latency (the merged
// scatter-gather latency — a request completes with its slowest node) and
// wall-clock async serving throughput. Replicating the popularity-head
// tables buys read balance; range-splitting the big tables spreads one
// table's block traffic across every node's channels.
//
// Part 2 degrades one node (latency multiplier) and shows how a single
// busy node drags the whole cluster's tail through the scatter-gather
// max — and how head-table replication blunts it (the balancer steers
// around the slow node only for replicated ranges... it cannot: degrade
// is not down. What replication buys under degrade is that only SOME
// requests touch the slow node at all).
//
// Part 3 downs a node outright: replicated tables fail over and keep
// serving; single-copy ranges on the dead node are lost, and the
// per-request partial-failure accounting prices that choice.
//
// Part 4 rebalances live: every table starts piled on node 0, and the
// skew-driven Rebalancer streams the hottest ranges to the idle node
// while requests keep flowing — zero failed lookups during the move, and
// the post-migration tail reflects the shed load.
#include <future>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/rebalance.h"
#include "cluster/router.h"
#include "cluster/store_cluster.h"

using namespace bandana;
using namespace bandana::bench;

namespace {

constexpr std::size_t kNumTables = 6;

struct ClusterModel {
  StorePlan plan;
  std::vector<EmbeddingTable> values;
  std::vector<Trace> eval;
};

ClusterModel make_model(std::uint32_t vectors, std::size_t requests) {
  ClusterModel m;
  for (std::size_t t = 0; t < kNumTables; ++t) {
    TableWorkloadConfig cfg;
    cfg.num_vectors = vectors;
    cfg.dim = 32;
    cfg.mean_lookups_per_query = 16;
    cfg.num_profiles = 256;
    TraceGenerator gen(cfg, splitmix64(900 + t));
    m.values.push_back(gen.make_embeddings());
    m.eval.push_back(gen.generate(requests));

    TablePolicy policy;
    policy.cache_vectors = vectors / 16;
    policy.policy = PrefetchPolicy::kNone;
    // Access counts give the hot-table selector a popularity signal:
    // lower table id = hotter (a stand-in for the paper's skewed mix).
    std::vector<std::uint32_t> counts(
        vectors, static_cast<std::uint32_t>(kNumTables - t));
    m.plan.tables.push_back(
        TablePlan{BlockLayout::random(vectors, 32, 40 + t), std::move(counts),
                  policy, 0.0});
  }
  return m;
}

MultiGetRequest make_request(const ClusterModel& m, std::size_t q) {
  MultiGetRequest req;
  for (std::size_t t = 0; t < kNumTables; ++t) {
    req.add(static_cast<TableId>(t), m.eval[t].query(q));
  }
  return req;
}

/// Worst-case placement for the rebalancing demo: every table whole on
/// node 0, node 1 idle — the skew the Rebalancer exists to fix.
class PileOnNodeZero final : public PlacementPolicy {
 public:
  PlacementMap place(const StorePlan& plan,
                     std::span<const EmbeddingTable> tables,
                     const ClusterConfig&) const override {
    PlacementMap pm;
    pm.tables.resize(plan.tables.size());
    for (std::size_t t = 0; t < plan.tables.size(); ++t) {
      PlacementMap::Range r;
      r.lo = 0;
      r.hi = tables[t].num_vectors();
      r.nodes = {0};
      pm.tables[t].push_back(std::move(r));
    }
    return pm;
  }
  const char* name() const override { return "pile-on-node-0"; }
};

ClusterConfig topology(std::uint32_t nodes, std::uint32_t replicas,
                       std::uint32_t hot_tables, std::uint32_t vectors) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replicas = replicas;
  cfg.hot_tables = hot_tables;
  cfg.placement = PlacementKind::kPlanAware;
  cfg.split_min_vectors = vectors;  // every table is exactly split-sized
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const std::uint32_t vectors = scaled32(16'384, 2048);
  const std::size_t requests = scaled(2'000, 150);
  const ClusterModel model = make_model(vectors, requests);

  print_header("Cluster serving: shard router topology sweep",
               "distributed serving tier (beyond the paper's single node)",
               std::to_string(kNumTables) + " tables x " +
                   std::to_string(vectors) + " vectors, " +
                   std::to_string(requests) + " requests");

  // ---- Part 1: nodes x replicas. ----
  TablePrinter t({"nodes", "replicas", "sim_mean_us", "sim_p99_us",
                  "blocks/req", "async_kreq/s"});
  struct Topo {
    std::uint32_t nodes, replicas;
  };
  for (const Topo topo_pt :
       {Topo{1, 1}, Topo{2, 1}, Topo{2, 2}, Topo{4, 1}, Topo{4, 2}}) {
    ClusterConfig cfg =
        topology(topo_pt.nodes, topo_pt.replicas, /*hot_tables=*/3, vectors);
    LatencyRecorder lat;
    std::uint64_t blocks = 0;
    {
      StoreCluster cluster(cfg, model.plan, model.values);
      for (std::size_t q = 0; q < requests; ++q) {
        cluster.advance_time_us(50.0);
        const ClusterMultiGetResult res =
            cluster.router().multi_get(make_request(model, q));
        lat.add(res.result.service_latency_us);
        blocks += res.result.block_reads;
      }
    }
    // Wall-clock async throughput on a fresh cluster (timing model off so
    // the number is the serving path, not the simulator).
    double kreq_s = 0.0;
    {
      ClusterConfig fast = cfg;
      fast.store.simulate_timing = false;
      StoreCluster cluster(fast, model.plan, model.values);
      ThreadPool pool(4);
      std::vector<std::future<ClusterMultiGetResult>> inflight;
      inflight.reserve(requests);
      WallTimer timer;
      for (std::size_t q = 0; q < requests; ++q) {
        inflight.push_back(
            cluster.router().multi_get_async(make_request(model, q), pool));
      }
      for (auto& f : inflight) f.get();
      kreq_s = requests / timer.seconds() / 1e3;
    }
    t.add_row({std::to_string(topo_pt.nodes), std::to_string(topo_pt.replicas),
               TablePrinter::fmt(lat.mean(), 1),
               TablePrinter::fmt(lat.percentile(0.99), 1),
               TablePrinter::fmt(static_cast<double>(blocks) /
                                     static_cast<double>(requests),
                                 1),
               TablePrinter::fmt(kreq_s, 1)});
  }
  t.print();
  std::printf(
      "\nSimulated latency is the scatter-gather max over the contacted "
      "nodes; more nodes\nsplit each request's block reads across more "
      "device channels, so the per-request\nwave shrinks. Replicas add "
      "read-balance headroom, not raw latency.\n");

  // ---- Part 2: one degraded node drags the cluster tail. ----
  std::printf("\ndegraded-node tail inflation (nodes=4, node 0 degraded):\n\n");
  TablePrinter d({"degrade_x", "replicas", "sim_p99_us", "p99_inflation"});
  for (const std::uint32_t replicas : {1u, 2u}) {
    double base_p99 = 0.0;
    for (const double degrade : {1.0, 2.0, 4.0, 16.0}) {
      ClusterConfig cfg = topology(4, replicas, kNumTables, vectors);
      StoreCluster cluster(cfg, model.plan, model.values);
      cluster.set_node_degraded(0, degrade);
      LatencyRecorder lat;
      for (std::size_t q = 0; q < requests; ++q) {
        cluster.advance_time_us(50.0);
        lat.add(cluster.router()
                    .multi_get(make_request(model, q))
                    .result.service_latency_us);
      }
      const double p99 = lat.percentile(0.99);
      if (degrade == 1.0) base_p99 = p99;
      d.add_row({TablePrinter::fmt(degrade, 0), std::to_string(replicas),
                 TablePrinter::fmt(p99, 1),
                 TablePrinter::fmt(p99 / base_p99, 2)});
    }
  }
  d.print();
  std::printf(
      "\nEvery range-split table puts a shard on node 0, so nearly every "
      "request pays the\nslow node and the tail inflates with the multiplier "
      "— the scatter-gather max is\nonly as good as the worst node "
      "(tail-at-scale in one row).\n");

  // ---- Part 3: down-node failover economics. ----
  std::printf(
      "\ndown-node failover (nodes=4, replicas=2, node 0 down; hot tables "
      "replicated,\ncold tables single-copy):\n\n");
  TablePrinter f({"hot_tables", "complete_req", "failovers", "failed_subs",
                  "failed_lookups"});
  for (const std::uint32_t hot : {0u, 3u, static_cast<std::uint32_t>(
                                              kNumTables)}) {
    ClusterConfig cfg = topology(4, 2, hot, vectors);
    StoreCluster cluster(cfg, model.plan, model.values);
    cluster.set_node_down(0, true);
    std::uint64_t complete = 0;
    for (std::size_t q = 0; q < requests; ++q) {
      cluster.advance_time_us(50.0);
      if (cluster.router().multi_get(make_request(model, q)).complete()) {
        ++complete;
      }
    }
    const RouterMetrics rm = cluster.router().metrics();
    f.add_row({std::to_string(hot),
               std::to_string(complete) + "/" + std::to_string(requests),
               std::to_string(rm.failovers),
               std::to_string(rm.failed_sub_requests),
               std::to_string(rm.failed_lookups)});
  }
  f.print();
  std::printf(
      "\nReplication is the availability knob: with every table hot, a dead "
      "node costs\nzero lookups (pure failover); each unreplicated table "
      "loses exactly the ranges\nthe dead node owned, and the router prices "
      "the loss per request.\n");

  // ---- Part 4: live rebalancing off an overloaded node. ----
  std::printf(
      "\nlive rebalancing (nodes=2, every table piled on node 0; the "
      "skew-driven\nRebalancer streams the hottest ranges to the idle node "
      "while serving):\n\n");
  {
    ClusterConfig cfg = topology(2, 1, 0, vectors);
    const PileOnNodeZero pile;
    StoreCluster cluster(cfg, model.plan, model.values, nullptr, &pile);
    TablePrinter r({"phase", "sim_mean_us", "sim_p99_us", "failed_lookups"});
    std::size_t q = 0;
    // A gap wide enough that the piled node is NOT saturated: open-loop
    // backlog would otherwise grow across phases and swamp the comparison.
    // What remains in the tail is per-request wave size plus migration
    // interference — exactly what a move changes.
    const double gap_us = 4000.0;
    // Serve one phase: a fixed request count, or — given a live session —
    // until its move completes (one pump per request arrival; the
    // inter-arrival gap doubles as the rate limiter's interval clock).
    const auto serve_phase = [&](const std::string& phase,
                                 RebalanceSession* session) {
      LatencyRecorder lat;
      const std::uint64_t failed_before =
          cluster.metrics().router.failed_lookups;
      const auto serve_one = [&] {
        cluster.advance_time_us(gap_us);
        lat.add(cluster.router()
                    .multi_get(make_request(model, q++ % requests))
                    .result.service_latency_us);
      };
      if (session != nullptr) {
        while (!session->done()) {
          serve_one();
          session->pump();
        }
      } else {
        for (std::size_t i = 0; i < requests; ++i) serve_one();
      }
      r.add_row({phase, TablePrinter::fmt(lat.mean(), 1),
                 TablePrinter::fmt(lat.percentile(0.99), 1),
                 std::to_string(cluster.metrics().router.failed_lookups -
                                failed_before)});
    };
    serve_phase("before", nullptr);
    const Rebalancer reb(cluster);
    const std::size_t max_moves = g_smoke ? 1 : 3;  // smoke: one-move phase
    std::size_t moves = 0;
    for (; moves < max_moves; ++moves) {
      const std::optional<MoveProposal> p = reb.propose();
      if (!p.has_value()) break;
      RepublishConfig rate;
      rate.blocks_per_interval = 8;  // stream spans many serving arrivals
      rate.interval_us = gap_us;
      RebalanceSession s = cluster.begin_rebalance(
          p->table, p->range_index, p->replica, p->target, rate);
      serve_phase("during move " + std::to_string(moves + 1) + " (table " +
                      std::to_string(p->table) + " -> node " +
                      std::to_string(p->target) + ")",
                  &s);
    }
    serve_phase("after", nullptr);
    r.print();
    const ClusterMetrics cm = cluster.metrics();
    std::printf(
        "\n%zu move(s), %llu placement flips, %llu blocks streamed "
        "donor->target, 0 lookups\nfailed: the donor serves every request "
        "until the lease-drained flip, then the\nshed ranges leave node 0's "
        "channels — the post-move tail is the payoff.\n",
        moves,
        static_cast<unsigned long long>(cluster.placement_flips()),
        static_cast<unsigned long long>(cm.store.migration_write_blocks));
  }
  return 0;
}
