// Fig. 5: mean and P99 device latency as a function of *application*
// request throughput, for the baseline policy (each 4 KB block read serves
// one 128 B vector -> 3.1% effective bandwidth) vs 100% effective bandwidth
// (the full 4 KB is useful). The baseline's latency hockey-sticks at ~1/32
// of the device bandwidth.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main() {
  const NvmDeviceConfig cfg;
  const double peak_iops = cfg.peak_bandwidth_bytes_per_s() / cfg.block_bytes;

  print_header("Figure 5: latency vs application throughput",
               "paper Fig. 5 (baseline saturates ~32x earlier than 4 KB reads)",
               "open-loop Poisson arrivals, 150k IOs per point");

  TablePrinter t({"policy", "app_MB/s", "device_util", "mean_us", "p99_us"});
  for (double util : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    const auto r = run_open_loop(cfg, util * peak_iops, 150'000, 11);
    for (const bool baseline : {true, false}) {
      const double useful_bytes = baseline ? 128.0 : 4096.0;
      t.add_row({baseline ? "baseline(128B useful)" : "100%-effective(4KB)",
                 TablePrinter::fmt(r.iops() * useful_bytes / 1e6, 1),
                 pct(util, 0), TablePrinter::fmt(r.latency_us.mean(), 1),
                 TablePrinter::fmt(r.latency_us.percentile(0.99), 1)});
    }
  }
  t.print();
  std::printf(
      "\nAt the same device utilization (same latency), the baseline serves "
      "32x less\napplication throughput: it saturates near %.0f MB/s while "
      "4 KB reads reach %.0f MB/s.\n",
      peak_iops * 128.0 / 1e6 * 0.95, peak_iops * 4096.0 / 1e6 * 0.95);
  return 0;
}
