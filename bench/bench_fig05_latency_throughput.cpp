// Fig. 5: latency as a function of *application* request throughput.
//
// Part 1 (device level, the paper's figure): open-loop Poisson block reads
// for the baseline policy (each 4 KB read serves one 128 B vector -> 3.1%
// effective bandwidth) vs 100% effective bandwidth. The baseline's latency
// hockey-sticks at ~1/32 of the device bandwidth.
//
// Part 2 (store level, the production serving path): whole DLRM requests
// fan out across the 8-table model through Store::multi_get — block reads
// deduplicated per request and scheduled queue-depth-aware across the NVM
// channels. Sweeps offered load to show the same hockey stick end-to-end,
// then compares sync multi_get vs ThreadPool multi_get_async wall-clock
// serving throughput.
#include <future>

#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

namespace {

MultiGetRequest make_request(const std::vector<TableRun>& runs,
                             std::size_t q) {
  MultiGetRequest req;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    req.add(static_cast<TableId>(i), runs[i].eval.query(q));
  }
  return req;
}

}  // namespace

int main() {
  const NvmDeviceConfig cfg;
  const double peak_iops = cfg.peak_bandwidth_bytes_per_s() / cfg.block_bytes;

  print_header("Figure 5: latency vs application throughput",
               "paper Fig. 5 (baseline saturates ~32x earlier than 4 KB reads)",
               "open-loop Poisson arrivals, 150k IOs per point; then "
               "request-level serving via Store::multi_get");

  TablePrinter t({"policy", "app_MB/s", "device_util", "mean_us", "p99_us"});
  for (double util : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    const auto r = run_open_loop(cfg, util * peak_iops, 150'000, 11);
    for (const bool baseline : {true, false}) {
      const double useful_bytes = baseline ? 128.0 : 4096.0;
      t.add_row({baseline ? "baseline(128B useful)" : "100%-effective(4KB)",
                 TablePrinter::fmt(r.iops() * useful_bytes / 1e6, 1),
                 pct(util, 0), TablePrinter::fmt(r.latency_us.mean(), 1),
                 TablePrinter::fmt(r.latency_us.percentile(0.99), 1)});
    }
  }
  t.print();
  std::printf(
      "\nAt the same device utilization (same latency), the baseline serves "
      "32x less\napplication throughput: it saturates near %.0f MB/s while "
      "4 KB reads reach %.0f MB/s.\n\n",
      peak_iops * 128.0 / 1e6 * 0.95, peak_iops * 4096.0 / 1e6 * 0.95);

  // ---- Part 2: the production serving path. ----
  auto runs = make_runs(0.05, 6'000, 2'000);
  std::vector<Trace> train;
  std::vector<std::uint32_t> sizes;
  std::vector<EmbeddingTable> tables;
  std::uint64_t total_vectors = 0;
  for (auto& r : runs) {
    train.push_back(r.train);
    sizes.push_back(r.cfg.num_vectors);
    tables.push_back(r.gen->make_embeddings());
    total_vectors += r.cfg.num_vectors;
  }
  StoreConfig store_cfg;
  TrainerConfig trainer_cfg;
  trainer_cfg.total_cache_vectors = total_vectors / 25;  // 4% DRAM
  Trainer trainer(store_cfg, trainer_cfg);
  ThreadPool train_pool;
  const StorePlan plan = trainer.train(train, sizes, &train_pool);

  const std::size_t num_requests = runs.front().eval.num_queries();
  std::printf("== Store serving: %zu requests x %zu tables, 4%% DRAM ==\n\n",
              num_requests, runs.size());

  // Offered-load sweep: one fresh store per point, paced by the simulated
  // clock (open-ish loop: fixed inter-arrival, closed within a request).
  TablePrinter s({"interarrival_us", "offered_kreq/s", "sim_mean_us",
                  "sim_p99_us", "blocks/req"});
  for (double interarrival_us : {200.0, 100.0, 50.0, 25.0, 10.0}) {
    Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
    LatencyRecorder lat;
    std::uint64_t blocks = 0;
    for (std::size_t q = 0; q < num_requests; ++q) {
      store.advance_time_us(interarrival_us);
      const MultiGetResult res = store.multi_get(make_request(runs, q));
      lat.add(res.service_latency_us);
      blocks += res.block_reads;
    }
    s.add_row({TablePrinter::fmt(interarrival_us, 0),
               TablePrinter::fmt(1e3 / interarrival_us, 1),
               TablePrinter::fmt(lat.mean(), 1),
               TablePrinter::fmt(lat.percentile(0.99), 1),
               TablePrinter::fmt(static_cast<double>(blocks) /
                                     static_cast<double>(num_requests),
                                 1)});
  }
  s.print();

  // Sync vs async wall-clock serving throughput (unpaced: as fast as the
  // serving path goes).
  std::printf("\nsync vs async serving throughput:\n\n");
  TablePrinter w({"mode", "requests", "wall_s", "kreq/s", "hit_rate"});
  {
    Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
    WallTimer timer;
    for (std::size_t q = 0; q < num_requests; ++q) {
      store.multi_get(make_request(runs, q));
    }
    const double secs = timer.seconds();
    w.add_row({"sync multi_get", std::to_string(num_requests),
               TablePrinter::fmt(secs, 2),
               TablePrinter::fmt(num_requests / secs / 1e3, 1),
               pct(store.total_metrics().hit_rate())});
  }
  {
    Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
    ThreadPool serving_pool(4);
    std::vector<std::future<MultiGetResult>> inflight;
    inflight.reserve(num_requests);
    WallTimer timer;
    for (std::size_t q = 0; q < num_requests; ++q) {
      inflight.push_back(
          store.multi_get_async(make_request(runs, q), serving_pool));
    }
    for (auto& f : inflight) f.get();
    const double secs = timer.seconds();
    w.add_row({"async multi_get (pool=4)", std::to_string(num_requests),
               TablePrinter::fmt(secs, 2),
               TablePrinter::fmt(num_requests / secs / 1e3, 1),
               pct(store.total_metrics().hit_rate())});
  }
  w.print();
  std::printf(
      "\nRequests pipeline across tables under per-table locking; async "
      "gains come from\noverlapping request assembly and per-table serving "
      "on multi-core hosts.\n");
  return 0;
}
