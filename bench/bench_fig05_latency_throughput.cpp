// Fig. 5: latency as a function of *application* request throughput.
//
// Part 1 (device level, the paper's figure): open-loop Poisson block reads
// for the baseline policy (each 4 KB read serves one 128 B vector -> 3.1%
// effective bandwidth) vs 100% effective bandwidth. The baseline's latency
// hockey-sticks at ~1/32 of the device bandwidth.
//
// Part 2 (store level, the production serving path): whole DLRM requests
// fan out across the 8-table model through Store::multi_get — block reads
// deduplicated per request and scheduled queue-depth-aware across the NVM
// channels. Sweeps offered load to show the same hockey stick end-to-end,
// then compares sync multi_get vs ThreadPool multi_get_async wall-clock
// serving throughput.
//
// Part 3 (shard sweep): multi_get_async against ONE table while sweeping
// cache_shards x serving threads. With one shard all requests serialize
// on the table's single cache lock; with >= threads shards they proceed
// in parallel, which is the multi-core scaling win of intra-table
// sharding (reported as async throughput and wall-clock p99).
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

namespace {

MultiGetRequest make_request(const std::vector<TableRun>& runs,
                             std::size_t q) {
  MultiGetRequest req;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    req.add(static_cast<TableId>(i), runs[i].eval.query(q));
  }
  return req;
}

/// Forwards everything to the wrapped backend EXCEPT the batched write
/// entry point, which falls back to the base class's per-block loop (and
/// no wave-buffer pool) — the pre-write_blocks write path, as a bench
/// baseline against genuinely batched writes on the same file.
class PerBlockWriteStorage final : public BlockStorage {
 public:
  explicit PerBlockWriteStorage(std::unique_ptr<BlockStorage> inner)
      : inner_(std::move(inner)) {}
  std::size_t block_bytes() const override { return inner_->block_bytes(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }
  void read_block(BlockId b, std::span<std::byte> out) const override {
    inner_->read_block(b, out);
  }
  void write_block(BlockId b, std::span<const std::byte> in) override {
    inner_->write_block(b, in);
  }
  void read_blocks(std::span<const BlockReadOp> ops) const override {
    inner_->read_blocks(ops);
  }
  bool prefers_batched_reads() const override {
    return inner_->prefers_batched_reads();
  }
  bool same_backing(const BlockStorage& other) const override {
    const auto* peer = dynamic_cast<const PerBlockWriteStorage*>(&other);
    return inner_->same_backing(peer ? *peer->inner_ : other);
  }

 private:
  std::unique_ptr<BlockStorage> inner_;
};

BlockStorageFactory per_block_write_factory(BlockStorageFactory inner) {
  return [inner = std::move(inner)](std::uint64_t num_blocks,
                                    std::size_t block_bytes) {
    return std::make_unique<PerBlockWriteStorage>(
        inner(num_blocks, block_bytes));
  };
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  const NvmDeviceConfig cfg;
  const double peak_iops = cfg.peak_bandwidth_bytes_per_s() / cfg.block_bytes;

  print_header("Figure 5: latency vs application throughput",
               "paper Fig. 5 (baseline saturates ~32x earlier than 4 KB reads)",
               "open-loop Poisson arrivals, 150k IOs per point; then "
               "request-level serving via Store::multi_get");

  TablePrinter t({"policy", "app_MB/s", "device_util", "mean_us", "p99_us"});
  for (double util : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    const auto r = run_open_loop(cfg, util * peak_iops, scaled64(150'000), 11);
    for (const bool baseline : {true, false}) {
      const double useful_bytes = baseline ? 128.0 : 4096.0;
      t.add_row({baseline ? "baseline(128B useful)" : "100%-effective(4KB)",
                 TablePrinter::fmt(r.iops() * useful_bytes / 1e6, 1),
                 pct(util, 0), TablePrinter::fmt(r.latency_us.mean(), 1),
                 TablePrinter::fmt(r.latency_us.percentile(0.99), 1)});
    }
  }
  t.print();
  std::printf(
      "\nAt the same device utilization (same latency), the baseline serves "
      "32x less\napplication throughput: it saturates near %.0f MB/s while "
      "4 KB reads reach %.0f MB/s.\n\n",
      peak_iops * 128.0 / 1e6 * 0.95, peak_iops * 4096.0 / 1e6 * 0.95);

  // ---- Part 2: the production serving path. ----
  auto runs = make_runs(0.05, scaled(6'000), scaled(2'000, 200));
  std::vector<Trace> train;
  std::vector<std::uint32_t> sizes;
  std::vector<EmbeddingTable> tables;
  std::uint64_t total_vectors = 0;
  for (auto& r : runs) {
    train.push_back(r.train);
    sizes.push_back(r.cfg.num_vectors);
    tables.push_back(r.gen->make_embeddings());
    total_vectors += r.cfg.num_vectors;
  }
  StoreConfig store_cfg;
  TrainerConfig trainer_cfg;
  trainer_cfg.total_cache_vectors = total_vectors / 25;  // 4% DRAM
  Trainer trainer(store_cfg, trainer_cfg);
  ThreadPool train_pool;
  const StorePlan plan = trainer.train(train, sizes, &train_pool);

  const std::size_t num_requests = runs.front().eval.num_queries();
  std::printf("== Store serving: %zu requests x %zu tables, 4%% DRAM ==\n\n",
              num_requests, runs.size());

  // Offered-load sweep: one fresh store per point, paced by the simulated
  // clock (open-ish loop: fixed inter-arrival, closed within a request).
  TablePrinter s({"interarrival_us", "offered_kreq/s", "sim_mean_us",
                  "sim_p99_us", "blocks/req"});
  for (double interarrival_us : {200.0, 100.0, 50.0, 25.0, 10.0}) {
    Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
    LatencyRecorder lat;
    std::uint64_t blocks = 0;
    for (std::size_t q = 0; q < num_requests; ++q) {
      store.advance_time_us(interarrival_us);
      const MultiGetResult res = store.multi_get(make_request(runs, q));
      lat.add(res.service_latency_us);
      blocks += res.block_reads;
    }
    s.add_row({TablePrinter::fmt(interarrival_us, 0),
               TablePrinter::fmt(1e3 / interarrival_us, 1),
               TablePrinter::fmt(lat.mean(), 1),
               TablePrinter::fmt(lat.percentile(0.99), 1),
               TablePrinter::fmt(static_cast<double>(blocks) /
                                     static_cast<double>(num_requests),
                                 1)});
  }
  s.print();

  // ---- Part 2b: read-only vs mixed traffic (live republish interference).
  // Republish writes are IoKind::kWrite events on the same channel FIFOs
  // and admission gate as the reads (open loop: the backlog stays on the
  // channels), so periodic retraining pushes the read tail out — the
  // paper's §2.2 write interference, reproducible end to end.
  //
  // Three modes separate the two costs of a live republish:
  //  * "side table": republish a table the requests never touch. Its
  //    cache flush affects nothing the sweep reads, so the latency gap vs
  //    read-only is PURE channel/gate write contention.
  //  * "served table": republish table 1, which the requests do read —
  //    write contention PLUS the cache flush's re-miss surge (visible as
  //    blocks/req rising). This is what a production republish costs. ----
  const std::size_t republish_every = std::max<std::size_t>(num_requests / 10,
                                                            1);
  // Republish now plan-diffs against storage (identical values are a
  // no-op), so the pushes must carry genuinely retrained values: alternate
  // between the original table and a perturbed copy — every push rewrites
  // the full diff, like a real retraining cycle.
  EmbeddingTable perturbed(tables[0].num_vectors(), tables[0].dim());
  for (VectorId v = 0; v < tables[0].num_vectors(); ++v) {
    const auto src = tables[0].vector(v);
    auto dst = perturbed.vector(v);
    for (std::size_t d = 0; d < src.size(); ++d) dst[d] = src[d] + 1000.0f;
  }
  std::printf(
      "\nread-only vs mixed traffic (one republish every %zu requests, same "
      "arrival\nprocess; republish-wave latency from Store::republish):\n\n",
      republish_every);
  enum class Mode { kReadOnly, kSideTable, kServedTable };
  TablePrinter mx({"interarrival_us", "mode", "sim_mean_us", "sim_p99_us",
                   "blocks/req", "republish_waves", "wave_p99_us"});
  TablePolicy side_policy;
  side_policy.cache_vectors = 1;
  side_policy.policy = PrefetchPolicy::kNone;
  for (double interarrival_us : {100.0, 50.0, 25.0, 10.0}) {
    for (const Mode mode :
         {Mode::kReadOnly, Mode::kSideTable, Mode::kServedTable}) {
      Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
      // The interference table: identical geometry to table 1, never read
      // by any request — only its write waves touch the serving path.
      const TableId side = store.add_table(
          tables[0],
          BlockLayout::identity(runs[0].cfg.num_vectors, 32), side_policy);
      LatencyRecorder lat, wave_lat;
      std::uint64_t blocks = 0;
      for (std::size_t q = 0; q < num_requests; ++q) {
        store.advance_time_us(interarrival_us);
        if (mode != Mode::kReadOnly && q > 0 && q % republish_every == 0) {
          const EmbeddingTable& push =
              (q / republish_every) % 2 == 1 ? perturbed : tables[0];
          wave_lat.add(store.republish(mode == Mode::kSideTable ? side : 0,
                                       push));
        }
        const MultiGetResult res = store.multi_get(make_request(runs, q));
        lat.add(res.service_latency_us);
        blocks += res.block_reads;
      }
      mx.add_row({TablePrinter::fmt(interarrival_us, 0),
                  mode == Mode::kReadOnly     ? "read-only"
                  : mode == Mode::kSideTable  ? "mixed (side table)"
                                              : "mixed (served table)",
                  TablePrinter::fmt(lat.mean(), 1),
                  TablePrinter::fmt(lat.percentile(0.99), 1),
                  TablePrinter::fmt(static_cast<double>(blocks) /
                                        static_cast<double>(num_requests),
                                    1),
                  std::to_string(wave_lat.count()),
                  wave_lat.count() == 0
                      ? "-"
                      : TablePrinter::fmt(wave_lat.percentile(0.99), 1)});
    }
  }
  mx.print();
  std::printf(
      "\nSame seed, same arrivals. The side-table rows isolate pure write "
      "contention:\nblocks/req matches read-only, so the whole p99 gap is "
      "republish writes queued\non the shared channels and admission gate. "
      "The served-table rows add the cache\nflush a real republish implies — "
      "blocks/req rises (re-miss surge) and the tail\ngrows further. Both "
      "gaps widen as offered load approaches the knee:\nrepublishing during "
      "peak traffic costs tail latency, during troughs almost\nnothing.\n");

  // ---- Part 2c: trickle-republish rate sweep (one-shot vs rate-limited).
  // The same §2.2 retraining push, now as a first-class background
  // process: Store::begin_trickle_republish plan-diffs the new values,
  // writes replacement blocks at most blocks_per_interval per interval_us
  // (open-loop kWrite waves on the shared channels), and swaps the
  // table's mapping when the push completes. One-shot republish is the
  // unlimited-rate endpoint; tightening the rate trades push duration for
  // read tail latency. Same seed, same arrivals across every row. ----
  {
    const double interarrival_us = 100.0;
    const std::size_t push_every = std::max<std::size_t>(num_requests / 4, 1);
    std::printf(
        "\ntrickle republish rate sweep at %.0f us interarrival (push of "
        "table 0 every %zu\nrequests, alternating perturbed values so every "
        "push rewrites the full diff):\n\n",
        interarrival_us, push_every);

    const std::uint32_t vpb = store_cfg.vectors_per_block();
    const std::uint32_t table0_blocks =
        (runs[0].cfg.num_vectors + vpb - 1) / vpb;

    struct Row {
      const char* mode;
      double p99 = 0.0;
      double blocks_per_req = 0.0;
      std::uint64_t pushes_completed = 0;
      std::uint64_t waves = 0;
      double push_duration_us = 0.0;  // mean simulated begin->swap time
    };
    std::vector<Row> rows;
    // blocks_per_interval: 0 = unlimited (whole diff in one wave).
    struct Mode {
      const char* name;
      bool trickle;
      std::uint32_t bpi;
    };
    const Mode modes[] = {
        {"read-only", false, 0},       {"one-shot republish", false, 1},
        {"trickle unlimited", true, 0}, {"trickle 512/itv", true, 512},
        {"trickle 128/itv", true, 128}, {"trickle 32/itv", true, 32},
        {"trickle 8/itv", true, 8},
    };
    for (const Mode& mode : modes) {
      Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
      // Reserve the replacement region up front in EVERY mode (including
      // read-only), so storage growth never perturbs the comparison.
      store.reserve_blocks(store.storage().num_blocks() + table0_blocks);
      RepublishConfig rate;
      rate.blocks_per_interval = mode.bpi;
      rate.interval_us = interarrival_us;  // one allowance per request slot
      LatencyRecorder lat;
      std::uint64_t blocks = 0;
      std::uint64_t pushes = 0, waves = 0;
      double push_duration = 0.0, push_begin = 0.0;
      std::optional<TrickleRepublish> session;
      const bool is_republishing = mode.trickle || mode.bpi == 1;
      for (std::size_t q = 0; q < num_requests; ++q) {
        store.advance_time_us(interarrival_us);
        if (is_republishing && q > 0 && q % push_every == 0) {
          const EmbeddingTable& next =
              (q / push_every) % 2 == 1 ? perturbed : tables[0];
          if (!mode.trickle) {
            store.republish(0, next);
            ++pushes;
            ++waves;
          } else if (!session || session->done()) {
            // A push still in flight keeps going; the next one is skipped
            // (one session per table) — the cost of a tight rate limit is
            // push latency, and the sweep reports it.
            session.emplace(store.begin_trickle_republish(
                0, next, TablePlan{plan.tables[0].layout,
                                   plan.tables[0].access_counts,
                                   plan.tables[0].policy,
                                   plan.tables[0].shp_train_fanout},
                rate));
            push_begin = store.now_us();
          }
        }
        if (session && !session->done()) {
          session->pump();
          if (session->done()) {
            ++pushes;
            waves += session->waves();
            push_duration += store.now_us() - push_begin;
          }
        }
        const MultiGetResult res = store.multi_get(make_request(runs, q));
        lat.add(res.service_latency_us);
        blocks += res.block_reads;
      }
      rows.push_back({mode.name, lat.percentile(0.99),
                      static_cast<double>(blocks) /
                          static_cast<double>(num_requests),
                      pushes, waves,
                      pushes ? push_duration / static_cast<double>(pushes)
                             : 0.0});
    }
    TablePrinter tr({"mode", "sim_p99_us", "p99_inflation", "blocks/req",
                     "pushes", "waves", "mean_push_us"});
    const double base_p99 = rows.front().p99;
    for (const Row& row : rows) {
      tr.add_row({row.mode, TablePrinter::fmt(row.p99, 1),
                  TablePrinter::fmt(row.p99 / base_p99, 2),
                  TablePrinter::fmt(row.blocks_per_req, 1),
                  std::to_string(row.pushes_completed),
                  std::to_string(row.waves),
                  row.pushes_completed
                      ? TablePrinter::fmt(row.push_duration_us, 0)
                      : "-"});
    }
    tr.print();
    std::printf(
        "\nSame seed & arrivals. One-shot and trickle-unlimited dump the "
        "whole diff as one\nopen-loop wave — the violent interference "
        "spike. Tightening blocks_per_interval\nshrinks read-p99 inflation "
        "monotonically toward the read-only baseline, at the\nprice of a "
        "longer push (mean_push_us) — production retraining pushes pick "
        "the\nrate that fits their tail-latency budget.\n");
  }

  // Sync vs async wall-clock serving throughput (unpaced: as fast as the
  // serving path goes).
  std::printf("\nsync vs async serving throughput:\n\n");
  TablePrinter w({"mode", "requests", "wall_s", "kreq/s", "hit_rate"});
  {
    Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
    WallTimer timer;
    for (std::size_t q = 0; q < num_requests; ++q) {
      store.multi_get(make_request(runs, q));
    }
    const double secs = timer.seconds();
    w.add_row({"sync multi_get", std::to_string(num_requests),
               TablePrinter::fmt(secs, 2),
               TablePrinter::fmt(num_requests / secs / 1e3, 1),
               pct(store.total_metrics().hit_rate())});
  }
  {
    Store store = StoreBuilder(store_cfg).add_plan(plan, tables).build();
    ThreadPool serving_pool(4);
    std::vector<std::future<MultiGetResult>> inflight;
    inflight.reserve(num_requests);
    WallTimer timer;
    for (std::size_t q = 0; q < num_requests; ++q) {
      inflight.push_back(
          store.multi_get_async(make_request(runs, q), serving_pool));
    }
    for (auto& f : inflight) f.get();
    const double secs = timer.seconds();
    w.add_row({"async multi_get (pool=4)", std::to_string(num_requests),
               TablePrinter::fmt(secs, 2),
               TablePrinter::fmt(num_requests / secs / 1e3, 1),
               pct(store.total_metrics().hit_rate())});
  }
  w.print();
  std::printf(
      "\nRequests pipeline across tables and, with sharded caches, inside "
      "each table; async\ngains come from overlapping request assembly and "
      "shard-parallel serving on\nmulti-core hosts.\n");

  // ---- Part 3: intra-table cache sharding sweep (one table). ----
  std::printf(
      "\nshard sweep: multi_get_async on ONE table, cache_shards x serving "
      "threads\n(timing model off: pure serving-path scaling; in-flight "
      "window = 4 x threads)\n\n");
  TableWorkloadConfig swl;
  swl.num_vectors = scaled32(100'000, 10'000);
  swl.dim = 32;
  swl.mean_lookups_per_query = 64;
  swl.num_profiles = 1000;
  TraceGenerator sgen(swl, 77);
  const EmbeddingTable svalues = sgen.make_embeddings();
  const Trace strace = sgen.generate(scaled(2000, 100));
  const BlockLayout slayout = BlockLayout::random(swl.num_vectors, 32, 5);
  TablePolicy spolicy;
  spolicy.cache_vectors = 10'000;
  spolicy.policy = PrefetchPolicy::kPosition;
  spolicy.insertion_position = 0.5;

  TablePrinter sweep({"shards", "threads", "kreq/s", "wall_p99_us",
                      "hit_rate"});
  for (const unsigned shards : {1u, 2u, 4u, 8u, 16u}) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      StoreConfig sc;
      sc.simulate_timing = false;
      sc.cache_shards = shards;
      StoreBuilder sb(sc);
      sb.add_table(svalues, TablePlan{slayout, {}, spolicy, 0.0});
      Store store = sb.build();
      ThreadPool pool(threads);

      using Clock = std::chrono::steady_clock;
      const std::size_t window = 4 * threads;
      std::deque<std::pair<std::future<MultiGetResult>, Clock::time_point>>
          inflight;
      LatencyRecorder wall_us;
      wall_us.reserve(strace.num_queries());
      const auto settle = [&] {
        inflight.front().first.get();
        wall_us.add(std::chrono::duration<double, std::micro>(
                        Clock::now() - inflight.front().second)
                        .count());
        inflight.pop_front();
      };
      WallTimer timer;
      for (std::size_t q = 0; q < strace.num_queries(); ++q) {
        if (inflight.size() >= window) settle();
        MultiGetRequest req;
        req.add(0, strace.query(q));
        inflight.emplace_back(store.multi_get_async(std::move(req), pool),
                              Clock::now());
      }
      while (!inflight.empty()) settle();
      const double secs = timer.seconds();
      sweep.add_row(
          {std::to_string(shards), std::to_string(threads),
           TablePrinter::fmt(strace.num_queries() / secs / 1e3, 1),
           TablePrinter::fmt(wall_us.percentile(0.99), 1),
           pct(store.total_metrics().hit_rate())});
    }
  }
  sweep.print();
  std::printf(
      "\nWith cache_shards = 1 every lookup serializes on one lock; with "
      "shards >= threads\nrequests to the same table proceed in parallel. "
      "The >= 3x async-throughput win at 8\nthreads requires >= 8 hardware "
      "cores (this host has %u).\n",
      std::thread::hardware_concurrency());

  // ---- Part 4: real-file backends — admission waves of overlapped reads
  // (io_uring, or thread-pool preads) vs one synchronous pread per miss. ----
  std::printf(
      "\nreal-file serving: sync pread vs batched async reads (one table, "
      "cold cache,\nadmission waves of queue_depth x channels blocks; "
      "timing model off)\n\n");
  TablePrinter file_sweep({"backend", "wall_s", "kreq/s", "hit_rate"});
  const auto file_bench = [&](const char* name, BlockStorageFactory factory) {
    StoreConfig sc;
    sc.simulate_timing = false;
    sc.cache_shards = 1;
    StoreBuilder sb(sc);
    sb.storage(std::move(factory));
    sb.add_table(svalues, TablePlan{slayout, {}, spolicy, 0.0});
    Store store = sb.build();
    WallTimer timer;
    for (std::size_t q = 0; q < strace.num_queries(); ++q) {
      MultiGetRequest req;
      req.add(0, strace.query(q));
      store.multi_get(req);
    }
    const double secs = timer.seconds();
    file_sweep.add_row({name, TablePrinter::fmt(secs, 2),
                        TablePrinter::fmt(strace.num_queries() / secs / 1e3, 1),
                        pct(store.total_metrics().hit_rate())});
    // Staging coverage: truncated/deferred blocks are the pipeline's
    // coverage gaps — visible here instead of silently inlined.
    const StoreMetrics sm = store.store_metrics();
    std::printf(
        "  %s staging: staged=%llu truncated=%llu deferred=%llu "
        "retry_blocks=%llu retry_waves=%llu\n",
        name, static_cast<unsigned long long>(sm.staged_blocks),
        static_cast<unsigned long long>(sm.stage_truncated_blocks),
        static_cast<unsigned long long>(sm.deferred_lookups),
        static_cast<unsigned long long>(sm.retry_blocks),
        static_cast<unsigned long long>(sm.retry_waves));
  };
  const std::string sync_path = "/tmp/bandana_fig05_sync.bin";
  const std::string async_path = "/tmp/bandana_fig05_async.bin";
  const std::string pool_path = "/tmp/bandana_fig05_pool.bin";
  file_bench("sync pread (FileBlockStorage)", file_storage_factory(sync_path));
  {
    // Report which async path is live on this host.
    AsyncFileBlockStorage probe("/tmp/bandana_fig05_probe.bin", 1, 4096);
    std::printf("async path on this host: %s\n\n",
                probe.io_uring_active() ? "io_uring" : "thread-pool preads");
    std::remove("/tmp/bandana_fig05_probe.bin");
  }
  file_bench("async waves (auto)", async_file_storage_factory(async_path));
  AsyncFileBlockStorage::Options pool_opts;
  pool_opts.force_thread_pool = true;
  file_bench("async waves (thread-pool)",
             async_file_storage_factory(pool_path, pool_opts));
  file_sweep.print();
  std::printf(
      "\nEvery miss block of a request is staged through one batched "
      "read_blocks wave\nper queue_depth x channels blocks, so real I/O "
      "overlaps like the simulated\nchannels — and the admission gate now "
      "throttles actual device traffic.\n");
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
  std::remove(pool_path.c_str());

  // ---- Part 5: real-file trickle republish — batched write_blocks vs the
  // per-block write path, serving reads throughout. Both modes run the
  // SAME rate limit, the same arrivals and the same diff on the same async
  // read backend; the only difference is whether each admitted wave goes
  // out as one batched write_blocks submission (composed in a leased,
  // io_uring-registered wave buffer) or as one pwrite per block. The
  // session's peak composed-image footprint (peak_wave_bytes) is the
  // bounded-memory claim of the lazy trickle: one wave, not one push. ----
  std::printf(
      "\nreal-file trickle republish: batched write_blocks vs per-block "
      "writes\n(same rate limit and arrivals; serving wall-clock p99 per "
      "request alongside;\ntiming model off)\n\n");
  {
    EmbeddingTable sperturbed(svalues.num_vectors(), svalues.dim());
    for (VectorId v = 0; v < svalues.num_vectors(); ++v) {
      const auto src = svalues.vector(v);
      auto dst = sperturbed.vector(v);
      for (std::size_t d = 0; d < src.size(); ++d) dst[d] = src[d] + 5.0f;
    }
    const std::string batched_path = "/tmp/bandana_fig05_wbatch.bin";
    const std::string perblock_path = "/tmp/bandana_fig05_wblock.bin";
    TablePrinter wp({"write path", "push_wall_ms", "republish_kblk/s",
                     "serve_p99_us", "peak_wave_KiB", "wave_bound_KiB"});
    const auto trickle_bench = [&](const char* name,
                                   BlockStorageFactory factory) {
      StoreConfig sc;
      sc.simulate_timing = false;
      sc.cache_shards = 1;
      StoreBuilder sb(sc);
      sb.storage(std::move(factory));
      sb.add_table(svalues, TablePlan{slayout, {}, spolicy, 0.0});
      Store store = sb.build();
      // Replacement region up front so growth never lands mid-measurement.
      store.reserve_blocks(2 * store.storage().num_blocks());
      RepublishConfig rate;
      rate.blocks_per_interval = 256;
      rate.interval_us = 50.0;
      TrickleRepublish session = store.begin_trickle_republish(
          0, sperturbed, TablePlan{slayout, {}, spolicy, 0.0}, rate);
      LatencyRecorder serve_us;
      double pump_s = 0.0;
      std::size_t q = 0;
      const std::size_t nq = strace.num_queries();
      while (!session.done() || q < nq) {
        store.advance_time_us(rate.interval_us);
        if (!session.done()) {
          WallTimer wt;
          session.pump();
          pump_s += wt.seconds();
        }
        MultiGetRequest req;
        req.add(0, strace.query(q % nq));
        WallTimer st;
        store.multi_get(req);
        serve_us.add(st.seconds() * 1e6);
        ++q;
      }
      const std::uint64_t written = session.written_blocks();
      const std::uint64_t wave_bound =
          std::uint64_t{sc.device.queue_depth} * sc.device.channels *
          sc.block_bytes;
      wp.add_row({name, TablePrinter::fmt(pump_s * 1e3, 1),
                  TablePrinter::fmt(pump_s > 0.0
                                        ? static_cast<double>(written) /
                                              pump_s / 1e3
                                        : 0.0,
                                    1),
                  TablePrinter::fmt(serve_us.percentile(0.99), 1),
                  TablePrinter::fmt(
                      static_cast<double>(session.peak_wave_bytes()) / 1024.0,
                      0),
                  TablePrinter::fmt(static_cast<double>(wave_bound) / 1024.0,
                                    0)});
    };
    trickle_bench("batched write_blocks",
                  async_file_storage_factory(batched_path));
    trickle_bench(
        "per-block writes",
        per_block_write_factory(async_file_storage_factory(perblock_path)));
    wp.print();
    std::printf(
        "\nSame diff, same admission schedule. The batched rows submit each "
        "admitted wave\nas one write_blocks call (one io_uring submission, "
        "WRITE_FIXED from a leased\nregistered buffer); the per-block rows "
        "pay one pwrite syscall per block. Both\nkeep peak_wave_KiB <= "
        "wave_bound_KiB: the trickle composes lazily per wave, so\npush DRAM "
        "is bounded by the admission wave no matter how large the diff "
        "is.\n");
    std::remove(batched_path.c_str());
    std::remove(perblock_path.c_str());
  }
  return 0;
}
