// Fig. 15: end-to-end effective bandwidth increase per table as a function
// of the number of requests used to train SHP (limited cache + tuned
// threshold admission, unlike Fig. 9's unlimited-cache variant). Part (b)
// replays the largest training stream through partition_stream's bounded
// reservoir: quality holds while peak training memory drops.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const std::size_t kTrainSizes[3] = {scaled(2'000), scaled(10'000),
                                      scaled(50'000)};
  const auto runs = make_runs(kScale, kTrainSizes[2], scaled(15'000));
  ThreadPool pool;
  const std::uint64_t kCapPerTable = 2000;

  print_header("Figure 15: EBW increase vs SHP training-set size",
               "paper Fig. 15 (200M/1B/5B requests; more data -> more BW)",
               "1:100 tables; train 2k/10k/50k queries; 2k cache vectors");

  TablePrinter t({"table", "train=2k", "train=10k", "train=50k"});
  for (const auto& r : runs) {
    const auto base = baseline_reads(r.eval, r.cfg.num_vectors, kCapPerTable);
    std::vector<std::string> row{r.cfg.name};
    for (const std::size_t n : kTrainSizes) {
      ShpConfig sc;
      sc.vectors_per_block = 32;
      const Trace train = r.train.head(n);
      const auto shp = run_shp(train, r.cfg.num_vectors, sc, &pool);
      const auto layout = BlockLayout::from_order(shp.order, 32);
      MiniCacheTunerConfig mc;
      mc.sampling_rate = 0.01;
      const auto choice =
          tune_threshold(train, layout, shp.access_counts, kCapPerTable, mc);
      CachePolicyConfig pc;
      pc.capacity_vectors = kCapPerTable;
      pc.policy = PrefetchPolicy::kThreshold;
      pc.access_threshold = choice.threshold;
      const auto reads =
          simulate_cache(r.eval, layout, pc, shp.access_counts).nvm_block_reads;
      row.push_back(pct(effective_bw_increase(base, reads)));
    }
    t.add_row(std::move(row));
  }
  t.print();

  // Streaming sweep: the same 50k-query signal consumed through a
  // TraceSource with a 10k-query reservoir (Vitter's Algorithm R). Access
  // counts still cover the FULL stream, so admission tuning is unchanged;
  // only the partitioned sample is bounded.
  print_header("\nFigure 15b: full-trace vs streaming training memory",
               "bounded-memory training: quality vs peak training bytes",
               "tables 1/4/8; 50k-query stream, 10k-query reservoir");
  {
    TablePrinter ts({"table", "ebw_full", "ebw_stream", "peak_full_MiB",
                     "peak_stream_MiB", "sampled/seen"});
    PartitionerConfig pcfg;
    pcfg.shp.vectors_per_block = 32;
    pcfg.max_train_queries = kTrainSizes[1];
    const auto partitioner = make_partitioner(pcfg, 32);
    for (const int j : {0, 3, 7}) {
      const auto& r = runs[j];
      const auto base = baseline_reads(r.eval, r.cfg.num_vectors, kCapPerTable);
      const auto serve_reads = [&](const PartitionResult& res,
                                   const Trace& tune_on) {
        const auto layout = BlockLayout::from_order(res.order, 32);
        MiniCacheTunerConfig mc;
        mc.sampling_rate = 0.01;
        const auto choice = tune_threshold(tune_on, layout, res.access_counts,
                                           kCapPerTable, mc);
        CachePolicyConfig pc;
        pc.capacity_vectors = kCapPerTable;
        pc.policy = PrefetchPolicy::kThreshold;
        pc.access_threshold = choice.threshold;
        return simulate_cache(r.eval, layout, pc, res.access_counts)
            .nvm_block_reads;
      };
      const auto full =
          partitioner->partition(r.train, r.cfg.num_vectors, nullptr, &pool);
      const auto full_reads = serve_reads(full, r.train);
      TraceRefSource source(r.train);
      Trace sampled;
      const auto streamed = partitioner->partition_stream(
          source, r.cfg.num_vectors, pcfg, nullptr, &pool, &sampled);
      const auto stream_reads = serve_reads(streamed, sampled);
      ts.add_row(
          {r.cfg.name, pct(effective_bw_increase(base, full_reads)),
           pct(effective_bw_increase(base, stream_reads)),
           TablePrinter::fmt(
               static_cast<double>(full.peak_training_bytes) / 1048576.0, 1),
           TablePrinter::fmt(
               static_cast<double>(streamed.peak_training_bytes) / 1048576.0,
               1),
           std::to_string(streamed.sampled_queries) + "/" +
               std::to_string(streamed.stream_queries)});
    }
    ts.print();
  }
  return 0;
}
