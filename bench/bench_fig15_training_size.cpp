// Fig. 15: end-to-end effective bandwidth increase per table as a function
// of the number of requests used to train SHP (limited cache + tuned
// threshold admission, unlike Fig. 9's unlimited-cache variant).
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const std::size_t kTrainSizes[3] = {scaled(2'000), scaled(10'000),
                                      scaled(50'000)};
  const auto runs = make_runs(kScale, kTrainSizes[2], scaled(15'000));
  ThreadPool pool;
  const std::uint64_t kCapPerTable = 2000;

  print_header("Figure 15: EBW increase vs SHP training-set size",
               "paper Fig. 15 (200M/1B/5B requests; more data -> more BW)",
               "1:100 tables; train 2k/10k/50k queries; 2k cache vectors");

  TablePrinter t({"table", "train=2k", "train=10k", "train=50k"});
  for (const auto& r : runs) {
    const auto base = baseline_reads(r.eval, r.cfg.num_vectors, kCapPerTable);
    std::vector<std::string> row{r.cfg.name};
    for (const std::size_t n : kTrainSizes) {
      ShpConfig sc;
      sc.vectors_per_block = 32;
      const Trace train = r.train.head(n);
      const auto shp = run_shp(train, r.cfg.num_vectors, sc, &pool);
      const auto layout = BlockLayout::from_order(shp.order, 32);
      MiniCacheTunerConfig mc;
      mc.sampling_rate = 0.01;
      const auto choice =
          tune_threshold(train, layout, shp.access_counts, kCapPerTable, mc);
      CachePolicyConfig pc;
      pc.capacity_vectors = kCapPerTable;
      pc.policy = PrefetchPolicy::kThreshold;
      pc.access_threshold = choice.threshold;
      const auto reads =
          simulate_cache(r.eval, layout, pc, shp.access_counts).nvm_block_reads;
      row.push_back(pct(effective_bw_increase(base, reads)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}
