// Fig. 13: end-to-end effective bandwidth increase per table as a function
// of the *total* DRAM budget across all 8 tables. Bandana = SHP layout +
// hit-rate-curve DRAM split + per-table mini-cache-tuned threshold
// admission; baseline = original layout, single-vector reads, same DRAM.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, scaled(30'000), scaled(15'000));
  ThreadPool pool;

  // Train once per table.
  std::vector<ShpResult> shp;
  std::vector<BlockLayout> layouts;
  std::vector<HitRateCurve> curves;
  for (const auto& r : runs) {
    ShpConfig sc;
    sc.vectors_per_block = 32;
    shp.push_back(run_shp(r.train, r.cfg.num_vectors, sc, &pool));
    layouts.push_back(BlockLayout::from_order(shp.back().order, 32));
    curves.push_back(
        approximate_hit_rate_curve(r.train, r.cfg.num_vectors, 0.05));
  }

  print_header("Figure 13: EBW increase vs total cache size (all 8 tables)",
               "paper Fig. 13 (up to ~5x for table 2 at 5M vectors; weak "
               "tables flat)",
               "1:100 tables; total cache 1k..16k vectors across 8 tables "
               "(paper: 1M..5M)");

  TablePrinter t({"total_cache", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8"});
  for (std::uint64_t total : {1000ULL, 2000ULL, 4000ULL, 8000ULL, 16000ULL}) {
    const auto alloc = allocate_dram(curves, total, 512);
    std::vector<std::string> row{std::to_string(total)};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const std::uint64_t cap = std::max<std::uint64_t>(alloc.per_table[i], 256);
      MiniCacheTunerConfig mc;
      mc.sampling_rate = 0.01;
      const auto choice = tune_threshold(runs[i].train, layouts[i],
                                         shp[i].access_counts, cap, mc);
      CachePolicyConfig pc;
      pc.capacity_vectors = cap;
      pc.policy = PrefetchPolicy::kThreshold;
      pc.access_threshold = choice.threshold;
      const auto reads = simulate_cache(runs[i].eval, layouts[i], pc,
                                        shp[i].access_counts)
                             .nvm_block_reads;
      const auto base = baseline_reads(runs[i].eval, runs[i].cfg.num_vectors, cap);
      row.push_back(pct(effective_bw_increase(base, reads), 0));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nBaseline: original layout, single-vector reads, same "
              "per-table DRAM.\n");
  return 0;
}
