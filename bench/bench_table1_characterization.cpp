// Table 1: characterization of the 8 user embedding tables — size, mean
// lookups per query, share of total lookups, compulsory-miss rate.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main() {
  // Short trace relative to table size: at 1:100 scale the fresh-vector
  // stacks of the high-compulsory tables exhaust (unique == whole table) if
  // we replay too long, capping the measurable compulsory rate.
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, /*train=*/0, /*eval=*/8'000);

  // Paper values for the side-by-side (Table 1).
  const double paper_share[8] = {9.44, 25.14, 7.23, 6.82, 8.19, 14.5, 14.73, 4.79};
  const double paper_comp[8] = {4.16, 2.19, 24.29, 19.46, 22.68, 26.94, 11.36, 60.83};
  const double paper_lookups[8] = {34.83, 92.75, 26.67, 25.14, 30.22, 53.50, 54.35, 17.68};

  std::uint64_t total = 0;
  std::vector<TableCharacterization> cs;
  for (const auto& r : runs) {
    cs.push_back(characterize(r.eval, r.cfg.num_vectors));
    total += cs.back().total_lookups;
  }

  print_header("Table 1: user embedding table characterization",
               "paper Table 1", "tables at 1:100 scale, 30k queries, mean "
               "lookups at 1/4 of the paper's");
  TablePrinter t({"table", "vectors", "avg_lookups (paper/4)", "%of_total (paper)",
                  "compulsory (paper)"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& c = cs[i];
    t.add_row({runs[i].cfg.name, std::to_string(c.num_vectors),
               TablePrinter::fmt(c.avg_lookups_per_query(), 2) + " (" +
                   TablePrinter::fmt(paper_lookups[i] / 4, 2) + ")",
               pct(static_cast<double>(c.total_lookups) / total) + " (" +
                   TablePrinter::fmt(paper_share[i], 1) + "%)",
               pct(c.compulsory_miss_rate()) + " (" +
                   TablePrinter::fmt(paper_comp[i], 1) + "%)"});
  }
  t.print();
  std::printf(
      "\nNotes: at 1:100 scale, profile cold-start inflates compulsory rates "
      "(every\nprofile's first activation is unique) and small tables exhaust "
      "their fresh\nstacks, capping the high-compulsory tables. The ordering "
      "(table 2 most\ncacheable, table 8 least) is the property the caching "
      "results depend on.\n");
  return 0;
}
