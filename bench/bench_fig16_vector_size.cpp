// Fig. 16: end-to-end effective bandwidth increase per table for embedding
// vector sizes of 64 / 128 / 256 bytes. Smaller vectors pack more per 4 KB
// block (64/32/16), so Bandana's prefetching recovers more bandwidth.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const std::uint64_t kCapPerTable = 2000;

  print_header("Figure 16: EBW increase vs embedding vector size",
               "paper Fig. 16 (smaller vectors -> higher EBW increase)",
               "1:100 tables; dims 16/32/64 floats = 64/128/256 B; "
               "2k cache vectors per table");

  TablePrinter t({"table", "64B", "128B", "256B"});
  std::vector<std::vector<std::string>> rows(8);
  ThreadPool pool;

  for (const std::uint16_t dim : {16, 32, 64}) {
    const auto runs = make_runs(kScale, scaled(30'000), scaled(15'000), dim);
    const std::uint32_t vpb =
        static_cast<std::uint32_t>(4096 / (dim * sizeof(float)));
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      if (rows[i].empty()) rows[i].push_back(r.cfg.name);
      ShpConfig sc;
      sc.vectors_per_block = vpb;
      const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
      const auto layout = BlockLayout::from_order(shp.order, vpb);
      MiniCacheTunerConfig mc;
      mc.sampling_rate = 0.01;
      const auto choice =
          tune_threshold(r.train, layout, shp.access_counts, kCapPerTable, mc);
      CachePolicyConfig pc;
      pc.capacity_vectors = kCapPerTable;
      pc.policy = PrefetchPolicy::kThreshold;
      pc.access_threshold = choice.threshold;
      const auto reads =
          simulate_cache(r.eval, layout, pc, shp.access_counts).nvm_block_reads;
      // Baseline at matching block geometry.
      const auto base =
          simulate_cache(r.eval, BlockLayout::identity(r.cfg.num_vectors, vpb),
                         baseline_policy(kCapPerTable))
              .nvm_block_reads;
      rows[i].push_back(pct(effective_bw_increase(base, reads)));
    }
  }
  for (auto& row : rows) t.add_row(std::move(row));
  t.print();
  return 0;
}
