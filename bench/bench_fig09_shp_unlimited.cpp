// Fig. 9: effective bandwidth increase per table when ordering vectors with
// SHP, as a function of the training-set size (unlimited cache). More
// training data -> better placement; SHP beats K-means everywhere except
// the most semantically aligned tables.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  // Train sizes scaled from the paper's 200M / 1B / 5B requests.
  const std::size_t kTrainSizes[3] = {scaled(2'000), scaled(10'000),
                                      scaled(50'000)};
  const auto runs = make_runs(kScale, kTrainSizes[2], scaled(15'000));
  ThreadPool pool;

  print_header("Figure 9: EBW increase with SHP vs training-set size",
               "paper Fig. 9 (up to ~5.5x for table 2 at 5B; ~0 for table 8)",
               "1:100 tables, train 2k/10k/50k queries, unlimited cache");

  CachePolicyConfig batched;
  batched.unlimited = true;
  batched.policy = PrefetchPolicy::kNone;

  TablePrinter t({"table", "train=2k", "train=10k", "train=50k"});
  for (const auto& r : runs) {
    const auto base = baseline_reads(r.eval, r.cfg.num_vectors, 0, true);
    std::vector<std::string> row{r.cfg.name};
    for (const std::size_t n : kTrainSizes) {
      ShpConfig sc;
      sc.vectors_per_block = 32;
      const auto shp = run_shp(r.train.head(n), r.cfg.num_vectors, sc, &pool);
      const auto layout = BlockLayout::from_order(shp.order, 32);
      const auto reads = simulate_cache(r.eval, layout, batched).nvm_block_reads;
      row.push_back(pct(effective_bw_increase(base, reads)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}
