// Shared setup for the figure/table reproduction benches.
//
// Every bench runs the scaled 8-table workload from trace/paper_workload.h
// (~1:100 of the paper's production tables) and prints the same rows/series
// the paper reports. Absolute numbers differ from the paper (synthetic
// traces, simulated device); the *shape* — who wins, by roughly what
// factor, where crossovers fall — is the reproduction target. See
// EXPERIMENTS.md for the side-by-side.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/table_printer.h"
#include "core/bandana.h"

namespace bandana::bench {

/// Smoke mode (`--smoke`): every bench runs one tiny configuration so CI
/// can catch bench bit-rot at PR time without paying full reproduction
/// cost. Benches wrap their heavy sizes in scaled()/scaled32(); sweep
/// structure and output format are unchanged, only the sizes shrink.
inline bool g_smoke = false;

/// Call first in every bench main(): parses --smoke (anything else is
/// ignored) and announces the mode so CI logs are self-describing.
inline void parse_bench_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") g_smoke = true;
  }
  if (g_smoke) std::printf("[smoke mode: tiny configuration]\n\n");
}

/// Full-size count in normal runs; ~1/64 (but at least `floor`) in smoke.
inline std::size_t scaled(std::size_t full, std::size_t floor = 64) {
  return g_smoke ? std::max<std::size_t>(floor, full / 64) : full;
}

inline std::uint64_t scaled64(std::uint64_t full, std::uint64_t floor = 64) {
  return g_smoke ? std::max<std::uint64_t>(floor, full / 64) : full;
}

inline std::uint32_t scaled32(std::uint32_t full, std::uint32_t floor = 64) {
  return g_smoke ? std::max<std::uint32_t>(floor, full / 64) : full;
}

struct TableRun {
  TableWorkloadConfig cfg;
  std::unique_ptr<TraceGenerator> gen;
  Trace train;
  Trace eval;
};

/// Instantiate the 8 paper tables at `scale`, generating `train_queries`
/// then `eval_queries` from each table's stream.
inline std::vector<TableRun> make_runs(double scale, std::size_t train_queries,
                                       std::size_t eval_queries,
                                       std::uint16_t dim = 32,
                                       std::uint64_t seed = 1234) {
  PaperWorkloadOptions opts;
  opts.scale = scale;
  opts.dim = dim;
  auto cfgs = paper_tables(opts);
  std::vector<TableRun> runs;
  runs.reserve(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    TableRun r;
    r.cfg = cfgs[i];
    r.gen = std::make_unique<TraceGenerator>(cfgs[i], splitmix64(seed + i));
    r.train = r.gen->generate(train_queries);
    r.eval = r.gen->generate(eval_queries);
    runs.push_back(std::move(r));
  }
  return runs;
}

/// NVM block reads of the paper's §4.1 baseline policy on this table.
inline std::uint64_t baseline_reads(const Trace& eval, std::uint32_t vectors,
                                    std::uint64_t capacity,
                                    bool unlimited = false) {
  const auto layout = BlockLayout::identity(vectors, 32);
  return simulate_cache(eval, layout, baseline_policy(capacity, unlimited))
      .nvm_block_reads;
}

class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline std::string pct(double fraction, int precision = 1) {
  return TablePrinter::pct(fraction, precision);
}

inline void print_header(const char* experiment, const char* paper_ref,
                         const std::string& scale_note) {
  std::printf("== %s ==\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Scale: %s\n\n", scale_note.c_str());
}

}  // namespace bandana::bench
