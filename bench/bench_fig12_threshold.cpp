// Fig. 12: filtering prefetched vectors by their SHP-run access count
// (admit only if accessed > t times during training). Small caches want
// aggressive filtering (high t); large caches want more prefetching.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, scaled(30'000), scaled(15'000));
  const auto& r = runs[1];  // table 2
  ThreadPool pool;

  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
  const auto layout = BlockLayout::from_order(shp.order, 32);

  print_header("Figure 12: access-threshold prefetch admission (table 2)",
               "paper Fig. 12 (+27%..+130%; optimum shifts with cache size)",
               "1:100 table 2, SHP layout, thresholds on SHP-run counts");

  TablePrinter t({"threshold", "cap=800", "cap=2000", "cap=4000", "cap=8000"});
  for (std::uint32_t thr : {0u, 2u, 5u, 10u, 15u, 20u}) {
    std::vector<std::string> row{std::to_string(thr)};
    for (std::uint64_t cap : {800ULL, 2000ULL, 4000ULL, 8000ULL}) {
      CachePolicyConfig none;
      none.capacity_vectors = cap;
      none.policy = PrefetchPolicy::kNone;
      const auto base = simulate_cache(r.eval, layout, none).nvm_block_reads;
      CachePolicyConfig pc;
      pc.capacity_vectors = cap;
      pc.policy = PrefetchPolicy::kThreshold;
      pc.access_threshold = thr;
      const auto reads =
          simulate_cache(r.eval, layout, pc, shp.access_counts).nvm_block_reads;
      row.push_back(pct(effective_bw_increase(base, reads)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nBaseline: no prefetching, same SHP layout and cache size.\n");
  return 0;
}
