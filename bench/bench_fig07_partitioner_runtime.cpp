// Fig. 7: partitioner runtimes. (a) flat K-means grows superlinearly with
// the cluster count — it does not scale to block-level granularity;
// (b) two-stage recursive K-means stays nearly flat in the sub-cluster
// count; (c) SHP runtime per table scales with trace volume;
// (d) runtime-vs-quality across the Partitioner seam: backend x thread
// count x table scale, with quality measured as NVM block reads per lookup
// over a short serve phase.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  ThreadPool pool;
  constexpr double kScale = 0.1;
  auto runs = make_runs(kScale, scaled(10'000), 1);
  const auto values = runs[3].gen->make_embeddings();  // table 4, as paper

  print_header("Figure 7a: flat K-means runtime vs clusters (table 4)",
               "paper Fig. 7a (exponential-looking growth; 2.3 h at 8192)",
               "1:200 table, dim 32, 8 Lloyd iterations");
  {
    TablePrinter t({"clusters", "seconds"});
    for (std::uint32_t full_k : {16u, 64u, 256u, 1024u, 2048u}) {
      const std::uint32_t k = scaled32(full_k, 2);
      KMeansConfig kc;
      kc.k = k;
      kc.max_iters = 8;
      WallTimer w;
      (void)kmeans(values, kc, &pool);
      t.add_row({std::to_string(k), TablePrinter::fmt(w.seconds(), 2)});
    }
    t.print();
  }

  print_header("\nFigure 7b: two-stage K-means runtime vs sub-clusters",
               "paper Fig. 7b (flat: 6-18 minutes across 256..65536)",
               "1:200 table, 64 top clusters");
  {
    TablePrinter t({"sub_clusters", "seconds"});
    for (std::uint32_t full_leaves : {256u, 1024u, 4096u, 8192u}) {
      const std::uint32_t leaves = scaled32(full_leaves, 16);
      RecursiveKMeansConfig rc;
      rc.top_clusters = scaled32(64, 4);
      rc.total_leaves = leaves;
      rc.max_iters = 8;
      WallTimer w;
      (void)recursive_kmeans(values, rc, &pool);
      t.add_row({std::to_string(leaves), TablePrinter::fmt(w.seconds(), 2)});
    }
    t.print();
  }

  print_header("\nFigure 7c: SHP runtime per table",
               "paper Fig. 7c (1-7 minutes per table, 16 iterations)",
               "1:200 tables, 10k training queries, 16 iterations");
  {
    TablePrinter t({"table", "seconds", "train_fanout_before", "after"});
    for (auto& r : runs) {
      ShpConfig sc;
      sc.vectors_per_block = 32;
      WallTimer w;
      const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
      t.add_row({r.cfg.name, TablePrinter::fmt(w.seconds(), 2),
                 TablePrinter::fmt(shp.initial_avg_fanout, 2),
                 TablePrinter::fmt(shp.final_avg_fanout, 2)});
    }
    t.print();
  }

  // Runtime-vs-quality budget for picking a retraining backend: every
  // Partitioner backend, across worker counts and table scale (10x is the
  // paper-scale table 4). Quality is blocks-per-lookup of a short serve
  // phase with a 4% DRAM cache and tuned threshold admission — lower is
  // better; train_s and peak_MiB are what that quality costs offline.
  print_header("\nFigure 7d: partitioner runtime vs serving quality",
               "runtime/quality retraining budget (no single paper figure)",
               "table 4 at 1x and 10x bench scale; 10k train / 10k serve");
  {
    struct Combo {
      PartitionerBackend backend;
      unsigned threads;
    };
    constexpr Combo kCombos[] = {
        {PartitionerBackend::kShp, 1},
        {PartitionerBackend::kShp, 2},
        {PartitionerBackend::kShp, 4},
        {PartitionerBackend::kShp, 8},
        {PartitionerBackend::kRecursiveKMeans, 1},
        {PartitionerBackend::kRecursiveKMeans, 4},
        {PartitionerBackend::kHypergraph, 1},
    };
    TablePrinter t({"backend", "threads", "vectors", "train_s", "peak_MiB",
                    "blocks_per_lookup"});
    for (const double mult : {1.0, 10.0}) {
      PaperWorkloadOptions o;
      o.scale = kScale * mult / (g_smoke ? 16.0 : 1.0);
      const auto cfg = paper_tables(o)[3];
      TraceGenerator gen(cfg, 4321);
      const Trace train = gen.generate(scaled(10'000));
      const Trace eval = gen.generate(scaled(10'000));
      const auto values = gen.make_embeddings();
      const std::uint64_t cache = cfg.num_vectors / 25;  // 4% DRAM
      for (const Combo& combo : kCombos) {
        PartitionerConfig pc;
        pc.backend = combo.backend;
        pc.kmeans.top_clusters = scaled32(64, 4);
        pc.kmeans.total_leaves =
            std::max(scaled32(1024, 16), pc.kmeans.top_clusters);
        const auto partitioner = make_partitioner(pc, 32);
        ThreadPool workers(combo.threads);
        WallTimer w;
        const auto res =
            partitioner->partition(train, cfg.num_vectors, &values, &workers);
        const double train_s = w.seconds();
        const auto layout = BlockLayout::from_order(res.order, 32);
        MiniCacheTunerConfig mc;
        mc.sampling_rate = 0.01;
        const auto choice =
            tune_threshold(train, layout, res.access_counts, cache, mc);
        CachePolicyConfig serve;
        serve.capacity_vectors = cache;
        serve.policy = PrefetchPolicy::kThreshold;
        serve.access_threshold = choice.threshold;
        const auto sim = simulate_cache(eval, layout, serve, res.access_counts);
        t.add_row({partitioner->name(), std::to_string(combo.threads),
                   std::to_string(cfg.num_vectors),
                   TablePrinter::fmt(train_s, 2),
                   TablePrinter::fmt(
                       static_cast<double>(res.peak_training_bytes) /
                           (1024.0 * 1024.0),
                       1),
                   TablePrinter::fmt(static_cast<double>(sim.nvm_block_reads) /
                                         static_cast<double>(sim.lookups),
                                     3)});
      }
    }
    t.print();
  }
  return 0;
}
