// Fig. 7: partitioner runtimes. (a) flat K-means grows superlinearly with
// the cluster count — it does not scale to block-level granularity;
// (b) two-stage recursive K-means stays nearly flat in the sub-cluster
// count; (c) SHP runtime per table scales with trace volume.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  ThreadPool pool;
  constexpr double kScale = 0.1;
  auto runs = make_runs(kScale, scaled(10'000), 1);
  const auto values = runs[3].gen->make_embeddings();  // table 4, as paper

  print_header("Figure 7a: flat K-means runtime vs clusters (table 4)",
               "paper Fig. 7a (exponential-looking growth; 2.3 h at 8192)",
               "1:200 table, dim 32, 8 Lloyd iterations");
  {
    TablePrinter t({"clusters", "seconds"});
    for (std::uint32_t full_k : {16u, 64u, 256u, 1024u, 2048u}) {
      const std::uint32_t k = scaled32(full_k, 2);
      KMeansConfig kc;
      kc.k = k;
      kc.max_iters = 8;
      WallTimer w;
      (void)kmeans(values, kc, &pool);
      t.add_row({std::to_string(k), TablePrinter::fmt(w.seconds(), 2)});
    }
    t.print();
  }

  print_header("\nFigure 7b: two-stage K-means runtime vs sub-clusters",
               "paper Fig. 7b (flat: 6-18 minutes across 256..65536)",
               "1:200 table, 64 top clusters");
  {
    TablePrinter t({"sub_clusters", "seconds"});
    for (std::uint32_t full_leaves : {256u, 1024u, 4096u, 8192u}) {
      const std::uint32_t leaves = scaled32(full_leaves, 16);
      RecursiveKMeansConfig rc;
      rc.top_clusters = scaled32(64, 4);
      rc.total_leaves = leaves;
      rc.max_iters = 8;
      WallTimer w;
      (void)recursive_kmeans(values, rc, &pool);
      t.add_row({std::to_string(leaves), TablePrinter::fmt(w.seconds(), 2)});
    }
    t.print();
  }

  print_header("\nFigure 7c: SHP runtime per table",
               "paper Fig. 7c (1-7 minutes per table, 16 iterations)",
               "1:200 tables, 10k training queries, 16 iterations");
  {
    TablePrinter t({"table", "seconds", "train_fanout_before", "after"});
    for (auto& r : runs) {
      ShpConfig sc;
      sc.vectors_per_block = 32;
      WallTimer w;
      const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
      t.add_row({r.cfg.name, TablePrinter::fmt(w.seconds(), 2),
                 TablePrinter::fmt(shp.initial_avg_fanout, 2),
                 TablePrinter::fmt(shp.final_avg_fanout, 2)});
    }
    t.print();
  }
  return 0;
}
