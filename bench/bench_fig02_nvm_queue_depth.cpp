// Fig. 2: latency and bandwidth of the NVM device for a 4 KB random-read
// workload at queue depths 1..16 (closed loop, as Fio with libaio).
//
// Runs on the event-driven per-channel NvmIoEngine, then sweeps the same
// closed loop on the legacy single-dispatch-queue reference model to show
// the two agree on the Fig. 2 shape (bandwidth saturates past `channels`
// outstanding IOs; latency then grows with queueing delay). A final table
// reports per-channel service counters from the engine — the per-channel
// view the single global queue could not expose.
#include "bench_common.h"
#include "nvm/io_engine.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  print_header("Figure 2: NVM latency/bandwidth vs queue depth",
               "paper Fig. 2 (375 GB device: ~10 us & 0.5 GB/s at QD1 -> "
               "~2.3 GB/s at QD8 with latency in the tens of us)",
               "simulated device, 200k IOs per depth; per-channel engine vs "
               "legacy dispatch queue");

  const NvmDeviceConfig cfg;
  const std::uint64_t ios_per_depth = scaled64(200'000);
  TablePrinter t({"queue_depth", "mean_us", "p99_us", "bandwidth_GB/s",
                  "legacy_mean_us", "legacy_GB/s"});
  for (unsigned qd : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = run_closed_loop(cfg, qd, ios_per_depth, /*seed=*/7);
    const auto legacy = run_closed_loop_legacy(cfg, qd, ios_per_depth,
                                               /*seed=*/7);
    t.add_row({std::to_string(qd), TablePrinter::fmt(r.latency_us.mean(), 1),
               TablePrinter::fmt(r.latency_us.percentile(0.99), 1),
               TablePrinter::fmt(
                   r.bandwidth_bytes_per_s(cfg.block_bytes) / 1e9, 2),
               TablePrinter::fmt(legacy.latency_us.mean(), 1),
               TablePrinter::fmt(
                   legacy.bandwidth_bytes_per_s(cfg.block_bytes) / 1e9, 2)});
  }
  t.print();
  std::printf(
      "\nShape check: bandwidth rises with queue depth and saturates near "
      "%.2f GB/s;\nlatency is flat while channels are idle, then grows with "
      "queueing delay.\nThe per-channel engine and the legacy global queue "
      "agree on the shape\n(and are bit-identical at channels=1 — see "
      "tests/test_io_engine.cpp).\n",
      cfg.peak_bandwidth_bytes_per_s() / 1e9);

  // Per-channel service balance at saturation, straight from the engine's
  // event records.
  std::printf("\nper-channel balance at QD16 (engine, 100k IOs):\n\n");
  NvmIoEngine engine(cfg, 7);
  std::uint64_t issued = 0;
  const std::uint64_t num_ios = scaled64(100'000);
  for (unsigned i = 0; i < 16 && issued < num_ios; ++i, ++issued) {
    engine.submit(0.0);
  }
  while (auto done = engine.next_completion()) {
    if (issued < num_ios) {
      engine.submit(done->complete_us);
      ++issued;
    }
  }
  TablePrinter c({"channel", "ios", "share", "busy_share"});
  double total_busy = 0.0;
  for (unsigned ch = 0; ch < engine.channels(); ++ch) {
    total_busy += engine.channel_stats(ch).busy_us;
  }
  for (unsigned ch = 0; ch < engine.channels(); ++ch) {
    const auto stats = engine.channel_stats(ch);
    c.add_row({std::to_string(ch), std::to_string(stats.ios),
               pct(static_cast<double>(stats.ios) /
                   static_cast<double>(num_ios)),
               pct(stats.busy_us / total_busy)});
  }
  c.print();
  std::printf(
      "\nJoin-shortest-FIFO routing keeps the channels balanced; with a "
      "bounded\nqueue_depth the admission gate, not the channel queues, "
      "absorbs bursts.\n");

  // Write-aware channel view: the same closed read loop with a background
  // write injected every k-th completion (republish traffic). Writes join
  // the identical FIFOs, so read latency inflates with the write share —
  // contention the read-only dispatch queue could never show.
  std::printf(
      "\nmixed read/write closed loop at QD8 (one write per k reads, "
      "%llu reads;\nmean write service %.1f us = %.1fx the %.1f us mean "
      "read service):\n\n",
      static_cast<unsigned long long>(num_ios), cfg.mean_write_service_us(),
      cfg.mean_write_service_us() / cfg.mean_service_us(),
      cfg.mean_service_us());
  TablePrinter mixed({"reads_per_write", "write_share", "read_mean_us",
                      "read_p99_us", "read_GB/s"});
  for (const unsigned k : {0u, 16u, 8u, 4u, 2u}) {
    NvmIoEngine mixed_engine(cfg, 7);
    std::uint64_t reads_issued = 0, writes_issued = 0, completed_reads = 0;
    LatencyRecorder read_lat;
    double end_time = 0.0;
    for (unsigned i = 0; i < 8 && reads_issued < num_ios; ++i, ++reads_issued) {
      mixed_engine.submit(0.0);
    }
    while (auto done = mixed_engine.next_completion()) {
      end_time = std::max(end_time, done->complete_us);
      if (done->kind == IoKind::kWrite) continue;
      read_lat.add(done->latency_us());
      ++completed_reads;
      if (reads_issued < num_ios) {
        mixed_engine.submit(done->complete_us);
        ++reads_issued;
        if (k != 0 && completed_reads % k == 0) {
          mixed_engine.submit(done->complete_us, IoKind::kWrite);
          ++writes_issued;
        }
      }
    }
    const double share =
        static_cast<double>(writes_issued) /
        static_cast<double>(writes_issued + reads_issued);
    mixed.add_row(
        {k == 0 ? "read-only" : std::to_string(k), pct(share),
         TablePrinter::fmt(read_lat.mean(), 1),
         TablePrinter::fmt(read_lat.percentile(0.99), 1),
         TablePrinter::fmt(static_cast<double>(completed_reads) *
                               cfg.block_bytes / (end_time * 1e-6) / 1e9,
                           2)});
  }
  mixed.print();
  std::printf(
      "\nEvery write occupies a channel for its (longer) service time and "
      "holds an\nadmission slot, so read tail latency and read bandwidth "
      "degrade as the write\nshare grows — the paper's republish "
      "interference, now first-class in the model.\n");

  // Steady-state write share under a TRICKLE republish: the same closed
  // read loop, but the writer is rate-limited by simulated time
  // (TrickleRateLimiter: at most blocks_per_interval writes per
  // interval_us), the way Store::begin_trickle_republish pushes a
  // retrained table. The device sees a bounded, steady write share
  // instead of a one-shot wave.
  const double trickle_interval_us = 50.0;
  std::printf(
      "\nsteady-state trickle write share at QD8 (rate limiter: N blocks "
      "per %.0f us of\nsimulated time, %llu reads):\n\n",
      trickle_interval_us, static_cast<unsigned long long>(num_ios));
  TablePrinter trickle({"blocks/interval", "write_share", "read_mean_us",
                        "read_p99_us", "read_GB/s"});
  for (const std::uint32_t bpi : {0u, 2u, 8u, 32u}) {
    NvmIoEngine engine_t(cfg, 7);
    TrickleRateLimiter limiter(RepublishConfig{bpi, trickle_interval_us});
    std::uint64_t reads_issued = 0, writes_issued = 0, completed_reads = 0;
    LatencyRecorder read_lat;
    double end_time = 0.0;
    for (unsigned i = 0; i < 8 && reads_issued < num_ios; ++i, ++reads_issued) {
      engine_t.submit(0.0);
    }
    while (auto done = engine_t.next_completion()) {
      end_time = std::max(end_time, done->complete_us);
      if (done->kind == IoKind::kWrite) continue;
      read_lat.add(done->latency_us());
      ++completed_reads;
      if (reads_issued >= num_ios) continue;
      engine_t.submit(done->complete_us);
      ++reads_issued;
      // The trickle writer drains its interval allowance as simulated
      // time passes — one write per read completion at most, so the
      // writes spread across the interval instead of bunching.
      if (bpi != 0 && limiter.allowance(done->complete_us) > 0) {
        limiter.consume(done->complete_us, 1);
        engine_t.submit(done->complete_us, IoKind::kWrite);
        ++writes_issued;
      }
    }
    const double share =
        writes_issued == 0
            ? 0.0
            : static_cast<double>(writes_issued) /
                  static_cast<double>(writes_issued + reads_issued);
    trickle.add_row(
        {bpi == 0 ? "read-only" : std::to_string(bpi), pct(share),
         TablePrinter::fmt(read_lat.mean(), 1),
         TablePrinter::fmt(read_lat.percentile(0.99), 1),
         TablePrinter::fmt(static_cast<double>(completed_reads) *
                               cfg.block_bytes / (end_time * 1e-6) / 1e9,
                           2)});
  }
  trickle.print();
  std::printf(
      "\nThe rate limit caps the steady-state write share (and therefore "
      "the read-p99\ninflation) independent of how large the retrained "
      "table is — the knob the\ntrickle republish sweep in bench_fig05 "
      "turns end to end.\n");
  return 0;
}
