// Fig. 2: latency and bandwidth of the NVM device for a 4 KB random-read
// workload at queue depths 1..8 (closed loop, as Fio with libaio).
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main() {
  print_header("Figure 2: NVM latency/bandwidth vs queue depth",
               "paper Fig. 2 (375 GB device: ~10 us & 0.5 GB/s at QD1 -> "
               "~2.3 GB/s at QD8 with latency in the tens of us)",
               "simulated device, 200k IOs per depth");

  const NvmDeviceConfig cfg;
  TablePrinter t({"queue_depth", "mean_us", "p99_us", "bandwidth_GB/s"});
  for (unsigned qd : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = run_closed_loop(cfg, qd, 200'000, /*seed=*/7);
    t.add_row({std::to_string(qd), TablePrinter::fmt(r.latency_us.mean(), 1),
               TablePrinter::fmt(r.latency_us.percentile(0.99), 1),
               TablePrinter::fmt(
                   r.bandwidth_bytes_per_s(cfg.block_bytes) / 1e9, 2)});
  }
  t.print();
  std::printf(
      "\nShape check: bandwidth rises with queue depth and saturates near "
      "%.2f GB/s;\nlatency is flat while channels are idle, then grows with "
      "queueing delay.\n",
      cfg.peak_bandwidth_bytes_per_s() / 1e9);
  return 0;
}
