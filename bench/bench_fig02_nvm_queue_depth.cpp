// Fig. 2: latency and bandwidth of the NVM device for a 4 KB random-read
// workload at queue depths 1..16 (closed loop, as Fio with libaio).
//
// Runs on the event-driven per-channel NvmIoEngine, then sweeps the same
// closed loop on the legacy single-dispatch-queue reference model to show
// the two agree on the Fig. 2 shape (bandwidth saturates past `channels`
// outstanding IOs; latency then grows with queueing delay). A final table
// reports per-channel service counters from the engine — the per-channel
// view the single global queue could not expose.
#include "bench_common.h"
#include "nvm/io_engine.h"

using namespace bandana;
using namespace bandana::bench;

int main() {
  print_header("Figure 2: NVM latency/bandwidth vs queue depth",
               "paper Fig. 2 (375 GB device: ~10 us & 0.5 GB/s at QD1 -> "
               "~2.3 GB/s at QD8 with latency in the tens of us)",
               "simulated device, 200k IOs per depth; per-channel engine vs "
               "legacy dispatch queue");

  const NvmDeviceConfig cfg;
  TablePrinter t({"queue_depth", "mean_us", "p99_us", "bandwidth_GB/s",
                  "legacy_mean_us", "legacy_GB/s"});
  for (unsigned qd : {1u, 2u, 4u, 8u, 16u}) {
    const auto r = run_closed_loop(cfg, qd, 200'000, /*seed=*/7);
    const auto legacy = run_closed_loop_legacy(cfg, qd, 200'000, /*seed=*/7);
    t.add_row({std::to_string(qd), TablePrinter::fmt(r.latency_us.mean(), 1),
               TablePrinter::fmt(r.latency_us.percentile(0.99), 1),
               TablePrinter::fmt(
                   r.bandwidth_bytes_per_s(cfg.block_bytes) / 1e9, 2),
               TablePrinter::fmt(legacy.latency_us.mean(), 1),
               TablePrinter::fmt(
                   legacy.bandwidth_bytes_per_s(cfg.block_bytes) / 1e9, 2)});
  }
  t.print();
  std::printf(
      "\nShape check: bandwidth rises with queue depth and saturates near "
      "%.2f GB/s;\nlatency is flat while channels are idle, then grows with "
      "queueing delay.\nThe per-channel engine and the legacy global queue "
      "agree on the shape\n(and are bit-identical at channels=1 — see "
      "tests/test_io_engine.cpp).\n",
      cfg.peak_bandwidth_bytes_per_s() / 1e9);

  // Per-channel service balance at saturation, straight from the engine's
  // event records.
  std::printf("\nper-channel balance at QD16 (engine, 100k IOs):\n\n");
  NvmIoEngine engine(cfg, 7);
  std::uint64_t issued = 0;
  const std::uint64_t num_ios = 100'000;
  for (unsigned i = 0; i < 16 && issued < num_ios; ++i, ++issued) {
    engine.submit(0.0);
  }
  while (auto done = engine.next_completion()) {
    if (issued < num_ios) {
      engine.submit(done->complete_us);
      ++issued;
    }
  }
  TablePrinter c({"channel", "ios", "share", "busy_share"});
  double total_busy = 0.0;
  for (unsigned ch = 0; ch < engine.channels(); ++ch) {
    total_busy += engine.channel_stats(ch).busy_us;
  }
  for (unsigned ch = 0; ch < engine.channels(); ++ch) {
    const auto stats = engine.channel_stats(ch);
    c.add_row({std::to_string(ch), std::to_string(stats.ios),
               pct(static_cast<double>(stats.ios) /
                   static_cast<double>(num_ios)),
               pct(stats.busy_us / total_busy)});
  }
  c.print();
  std::printf(
      "\nJoin-shortest-FIFO routing keeps the channels balanced; with a "
      "bounded\nqueue_depth the admission gate, not the channel queues, "
      "absorbs bursts.\n");
  return 0;
}
