// Fig. 11 (a/b/c): three prefetch-retention heuristics on the SHP-
// partitioned table 2, vs a no-prefetch baseline at the same cache size:
//   (a) insert prefetched vectors at a lower queue position;
//   (b) admit prefetched vectors only if present in a shadow cache of past
//       application reads;
//   (c) both combined (shadow hit -> top, miss -> low position).
// None is a clear win (the paper's motivation for threshold admission).
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, scaled(30'000), scaled(15'000));
  const auto& r = runs[1];  // table 2
  ThreadPool pool;

  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
  const auto layout = BlockLayout::from_order(shp.order, 32);
  const std::uint64_t caps[4] = {800, 1200, 1600, 2000};

  // The Fig. 11 baseline is "no prefetches" at the same cache size
  // (batched reads, requested vectors only).
  auto no_prefetch_reads = [&](std::uint64_t cap) {
    CachePolicyConfig pc;
    pc.capacity_vectors = cap;
    pc.policy = PrefetchPolicy::kNone;
    return simulate_cache(r.eval, layout, pc).nvm_block_reads;
  };

  print_header("Figure 11a: prefetch insertion position (table 2, SHP layout)",
               "paper Fig. 11a (mixed, +-30%)",
               "1:100 table 2; cache sizes 800..2000 vectors");
  {
    TablePrinter t({"position", "cap=800", "cap=1200", "cap=1600", "cap=2000"});
    for (double pos : {0.0, 0.3, 0.5, 0.7, 0.9}) {
      std::vector<std::string> row{TablePrinter::fmt(pos, 1)};
      for (std::uint64_t cap : caps) {
        CachePolicyConfig pc;
        pc.capacity_vectors = cap;
        pc.policy = PrefetchPolicy::kPosition;
        pc.insertion_position = pos;
        const auto reads = simulate_cache(r.eval, layout, pc).nvm_block_reads;
        row.push_back(pct(effective_bw_increase(no_prefetch_reads(cap), reads)));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  print_header("\nFigure 11b: shadow-cache admission",
               "paper Fig. 11b (tiny effect, -4%..+5%)", "shadow = 1/1.5/2x");
  {
    TablePrinter t({"shadow_mult", "cap=800", "cap=1200", "cap=1600", "cap=2000"});
    for (double mult : {1.0, 1.5, 2.0}) {
      std::vector<std::string> row{TablePrinter::fmt(mult, 1)};
      for (std::uint64_t cap : caps) {
        CachePolicyConfig pc;
        pc.capacity_vectors = cap;
        pc.policy = PrefetchPolicy::kShadow;
        pc.shadow_multiplier = mult;
        const auto reads = simulate_cache(r.eval, layout, pc).nvm_block_reads;
        row.push_back(pct(effective_bw_increase(no_prefetch_reads(cap), reads)));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  print_header("\nFigure 11c: combined (shadow hit->top, miss->position)",
               "paper Fig. 11c (still not a clear win)", "shadow 1.5x");
  {
    TablePrinter t({"position", "cap=800", "cap=1200", "cap=1600", "cap=2000"});
    for (double pos : {0.3, 0.5, 0.7, 0.9}) {
      std::vector<std::string> row{TablePrinter::fmt(pos, 1)};
      for (std::uint64_t cap : caps) {
        CachePolicyConfig pc;
        pc.capacity_vectors = cap;
        pc.policy = PrefetchPolicy::kShadowPosition;
        pc.insertion_position = pos;
        pc.shadow_multiplier = 1.5;
        const auto reads = simulate_cache(r.eval, layout, pc).nvm_block_reads;
        row.push_back(pct(effective_bw_increase(no_prefetch_reads(cap), reads)));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  return 0;
}
