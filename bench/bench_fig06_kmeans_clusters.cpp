// Fig. 6: effective bandwidth increase when ordering vectors by flat
// K-means clusters, as a function of the number of clusters (unlimited
// cache). Semantically aligned tables (1, 2) gain the most; the
// high-compulsory-miss table 8 gains the least.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.1;  // K-means is the paper's scalability pain
  const auto runs = make_runs(kScale, 0, scaled(15'000));
  const int tables[4] = {0, 1, 5, 7};  // tables 1, 2, 6, 8
  ThreadPool pool;

  print_header("Figure 6: EBW increase vs number of K-means clusters",
               "paper Fig. 6 (tables 1-2 up to ~180%; little gain past a "
               "point; weak tables flat)",
               "1:200 tables, 15k queries, unlimited cache");

  TablePrinter t({"clusters", "table1", "table2", "table6", "table8"});
  CachePolicyConfig batched;
  batched.unlimited = true;
  batched.policy = PrefetchPolicy::kNone;

  std::vector<std::uint64_t> base(4);
  std::vector<EmbeddingTable> values;
  for (int j = 0; j < 4; ++j) {
    const auto& r = runs[tables[j]];
    base[j] = baseline_reads(r.eval, r.cfg.num_vectors, 0, /*unlimited=*/true);
    values.push_back(r.gen->make_embeddings());
  }

  for (std::uint32_t full_k : {1u, 8u, 32u, 128u, 512u, 1024u}) {
    const std::uint32_t k = scaled32(full_k, 1);
    std::vector<std::string> row{std::to_string(k)};
    for (int j = 0; j < 4; ++j) {
      const auto& r = runs[tables[j]];
      KMeansConfig kc;
      kc.k = k;
      kc.max_iters = 8;
      kc.seed = 5;
      const auto km = kmeans(values[j], kc, &pool);
      const auto layout =
          BlockLayout::from_order(cluster_major_order(km.assignment, km.k), 32);
      const auto reads = simulate_cache(r.eval, layout, batched).nvm_block_reads;
      row.push_back(pct(effective_bw_increase(base[j], reads)));
    }
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}
