// Ablations for design choices DESIGN.md calls out:
//   1. Query batching (per-query block dedup) on/off — the silent workhorse
//      behind partitioning gains.
//   2. DRAM allocator: hit-rate-curve greedy vs uniform split.
//   3. Shadow-multiplier x threshold interaction.
//   4. SHP refinement iterations vs achieved fanout & runtime.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main() {
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, 30'000, 15'000);
  ThreadPool pool;

  std::vector<ShpResult> shp;
  std::vector<BlockLayout> layouts;
  for (const auto& r : runs) {
    ShpConfig sc;
    sc.vectors_per_block = 32;
    shp.push_back(run_shp(r.train, r.cfg.num_vectors, sc, &pool));
    layouts.push_back(BlockLayout::from_order(shp.back().order, 32));
  }

  print_header("Ablation 1: query batching on/off (threshold policy, SHP)",
               "DESIGN.md: per-query block dedup", "2k cache vectors/table");
  {
    TablePrinter t({"table", "reads_batched", "reads_unbatched", "penalty"});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      CachePolicyConfig pc;
      pc.capacity_vectors = 2000;
      pc.policy = PrefetchPolicy::kThreshold;
      pc.access_threshold = 5;
      const auto on =
          simulate_cache(runs[i].eval, layouts[i], pc, shp[i].access_counts);
      pc.batch_dedup = false;
      const auto off =
          simulate_cache(runs[i].eval, layouts[i], pc, shp[i].access_counts);
      t.add_row({runs[i].cfg.name, std::to_string(on.nvm_block_reads),
                 std::to_string(off.nvm_block_reads),
                 pct(static_cast<double>(off.nvm_block_reads) /
                         static_cast<double>(on.nvm_block_reads) -
                     1.0)});
    }
    t.print();
  }

  print_header("\nAblation 2: DRAM allocator greedy vs uniform",
               "Sec 4.3.3 / Dynacache", "total budget sweep, all tables");
  {
    std::vector<HitRateCurve> curves;
    for (const auto& r : runs) {
      curves.push_back(
          approximate_hit_rate_curve(r.train, r.cfg.num_vectors, 0.05));
    }
    TablePrinter t({"total_cache", "greedy_hits", "uniform_hits", "advantage"});
    for (std::uint64_t total : {8000ULL, 16000ULL, 32000ULL}) {
      const auto g = allocate_dram(curves, total, 512);
      const auto u = allocate_uniform(curves, total);
      t.add_row({std::to_string(total), std::to_string(g.expected_hits),
                 std::to_string(u.expected_hits),
                 pct(static_cast<double>(g.expected_hits) /
                         std::max<std::uint64_t>(1, u.expected_hits) -
                     1.0)});
    }
    t.print();
  }

  print_header("\nAblation 3: shadow multiplier x admission (table 2)",
               "Fig. 11b extension", "cache 1200 vectors");
  {
    const auto& r = runs[1];
    CachePolicyConfig none;
    none.capacity_vectors = 1200;
    none.policy = PrefetchPolicy::kNone;
    const auto base = simulate_cache(r.eval, layouts[1], none).nvm_block_reads;
    TablePrinter t({"shadow_mult", "shadow_only", "shadow+position0.5"});
    for (double mult : {1.0, 1.5, 2.0, 3.0}) {
      CachePolicyConfig s;
      s.capacity_vectors = 1200;
      s.policy = PrefetchPolicy::kShadow;
      s.shadow_multiplier = mult;
      const auto a = simulate_cache(r.eval, layouts[1], s).nvm_block_reads;
      s.policy = PrefetchPolicy::kShadowPosition;
      s.insertion_position = 0.5;
      const auto b = simulate_cache(r.eval, layouts[1], s).nvm_block_reads;
      t.add_row({TablePrinter::fmt(mult, 1), pct(effective_bw_increase(base, a)),
                 pct(effective_bw_increase(base, b))});
    }
    t.print();
  }

  print_header("\nAblation 4: SHP iterations vs fanout and runtime (table 2)",
               "ShpConfig::iters_per_level", "1:100 table 2, 30k queries");
  {
    const auto& r = runs[1];
    TablePrinter t({"iters/level", "train_fanout", "eval_fanout", "seconds"});
    for (std::uint32_t iters : {1u, 2u, 4u, 8u, 16u, 32u}) {
      ShpConfig sc;
      sc.vectors_per_block = 32;
      sc.iters_per_level = iters;
      WallTimer w;
      const auto result = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
      const double secs = w.seconds();
      const auto layout = BlockLayout::from_order(result.order, 32);
      t.add_row({std::to_string(iters),
                 TablePrinter::fmt(result.final_avg_fanout, 2),
                 TablePrinter::fmt(compute_fanout(r.eval, layout).avg_fanout, 2),
                 TablePrinter::fmt(secs, 2)});
    }
    t.print();
  }
  return 0;
}
