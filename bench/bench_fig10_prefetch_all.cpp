// Fig. 10: effective bandwidth increase with a *limited* cache when every
// prefetched vector is cached like a requested one (kAll), for SHP-
// partitioned vs original tables. Blind prefetching pollutes the LRU queue
// and goes strongly negative for the original layout.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, scaled(30'000), scaled(15'000));
  const auto& r = runs[1];  // table 2, as in the paper's cache study
  ThreadPool pool;

  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
  const auto partitioned = BlockLayout::from_order(shp.order, 32);
  const auto original = BlockLayout::identity(r.cfg.num_vectors, 32);

  print_header("Figure 10: prefetch-all with a limited cache (table 2)",
               "paper Fig. 10 (negative for original tables, up to -90%)",
               "1:100 table 2; cache sizes scaled from the paper's 80k-200k");

  TablePrinter t({"cache_vectors", "partitioned_tables", "original_tables"});
  for (std::uint64_t cap : {800ULL, 1200ULL, 1600ULL, 2000ULL}) {
    const auto base = baseline_reads(r.eval, r.cfg.num_vectors, cap);
    CachePolicyConfig all;
    all.capacity_vectors = cap;
    all.policy = PrefetchPolicy::kAll;
    const auto part = simulate_cache(r.eval, partitioned, all).nvm_block_reads;
    const auto orig = simulate_cache(r.eval, original, all).nvm_block_reads;
    t.add_row({std::to_string(cap),
               pct(effective_bw_increase(base, part)),
               pct(effective_bw_increase(base, orig))});
  }
  t.print();
  return 0;
}
