// Fig. 14: end-to-end effective bandwidth increase per table as a function
// of the miniature-cache sampling rate, vs an oracle ("full cache") that
// evaluates every threshold at full size. 0.1% sampling is nearly free and
// nearly as good.
#include "bench_common.h"

using namespace bandana;
using namespace bandana::bench;

int main(int argc, char** argv) {
  parse_bench_args(argc, argv);
  constexpr double kScale = 0.2;
  const auto runs = make_runs(kScale, scaled(30'000), scaled(15'000));
  ThreadPool pool;
  const std::uint64_t kCapPerTable = 2000;  // paper: 4M across tables
  const std::vector<std::uint32_t> candidates{0, 2, 5, 10, 15, 20};

  print_header("Figure 14: EBW increase vs mini-cache sampling rate",
               "paper Fig. 14 (0.1% sampling ~= oracle across all tables)",
               "1:100 tables; 2k cache vectors per table");

  TablePrinter t({"table", "0.1%", "1%", "10%", "oracle"});
  for (const auto& r : runs) {
    ShpConfig sc;
    sc.vectors_per_block = 32;
    const auto shp = run_shp(r.train, r.cfg.num_vectors, sc, &pool);
    const auto layout = BlockLayout::from_order(shp.order, 32);
    const auto base = baseline_reads(r.eval, r.cfg.num_vectors, kCapPerTable);

    auto gain_with_threshold = [&](std::uint32_t thr) {
      CachePolicyConfig pc;
      pc.capacity_vectors = kCapPerTable;
      pc.policy = PrefetchPolicy::kThreshold;
      pc.access_threshold = thr;
      const auto reads =
          simulate_cache(r.eval, layout, pc, shp.access_counts).nvm_block_reads;
      return effective_bw_increase(base, reads);
    };

    std::vector<std::string> row{r.cfg.name};
    for (double rate : {0.001, 0.01, 0.1}) {
      MiniCacheTunerConfig mc;
      mc.sampling_rate = rate;
      mc.candidates = candidates;
      const auto choice =
          tune_threshold(r.train, layout, shp.access_counts, kCapPerTable, mc);
      row.push_back(pct(gain_with_threshold(choice.threshold)));
    }
    double oracle = -1e9;
    for (std::uint32_t thr : candidates) {
      oracle = std::max(oracle, gain_with_threshold(thr));
    }
    row.push_back(pct(oracle));
    t.add_row(std::move(row));
  }
  t.print();
  return 0;
}
